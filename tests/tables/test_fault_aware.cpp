/**
 * @file
 * Unit tests for fault-aware full-table reprogramming.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "routing/duato.hpp"
#include "tables/economical_storage.hpp"
#include "tables/fault_aware.hpp"

namespace lapses
{
namespace
{

PortId
px()
{
    return MeshShape::port(0, Direction::Plus);
}

TEST(FailureSet, SymmetricAndQueryable)
{
    const Topology m = makeSquareMesh(4);
    FailureSet fs;
    const NodeId n = m.mesh()->coordsToNode(Coordinates(1, 1));
    fs.fail(m, n, px());
    EXPECT_EQ(fs.count(), 1u);
    EXPECT_TRUE(fs.isFailed(n, px()));
    // The reverse direction is failed too.
    const NodeId peer = m.neighbor(n, px());
    EXPECT_TRUE(fs.isFailed(peer, MeshShape::oppositePort(px())));
    EXPECT_FALSE(fs.isFailed(n, MeshShape::port(1,
                                                   Direction::Plus)));
}

TEST(FailureSet, DuplicateFailureCountsOnce)
{
    const Topology m = makeSquareMesh(4);
    FailureSet fs;
    fs.fail(m, 0, px());
    fs.fail(m, 0, px());
    EXPECT_EQ(fs.count(), 1u);
}

TEST(FailureSet, RejectsEdgeAndLocalPorts)
{
    const Topology m = makeSquareMesh(4);
    FailureSet fs;
    EXPECT_THROW(fs.fail(m, 0, kLocalPort), ConfigError);
    // Node 0's -X port faces the mesh edge.
    EXPECT_THROW(
        fs.fail(m, 0, MeshShape::port(0, Direction::Minus)),
        ConfigError);
}

TEST(FaultAware, NoFailuresGivesMinimalAdaptiveTable)
{
    // With an empty failure set the shortest-path DAG is exactly the
    // minimal-adaptive candidate set.
    const Topology m = makeSquareMesh(4);
    const FullTable table = programFaultAwareTable(m, FailureSet{});
    const DuatoAdaptiveRouting duato(m);
    for (NodeId r = 0; r < m.numNodes(); ++r) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            const RouteCandidates got = table.lookup(r, d);
            const RouteCandidates want = duato.route(r, d);
            ASSERT_EQ(got.count(), want.count());
            for (int i = 0; i < want.count(); ++i)
                EXPECT_TRUE(got.contains(want.at(i)));
        }
    }
}

TEST(FaultAware, RoutesAroundASingleFailure)
{
    const Topology m = makeSquareMesh(4);
    FailureSet fs;
    const NodeId a = m.mesh()->coordsToNode(Coordinates(1, 1));
    fs.fail(m, a, px()); // break (1,1) <-> (2,1)
    const FullTable table = programFaultAwareTable(m, fs);
    // From (1,1) to (2,1): direct link dead, detour costs 3 hops.
    const NodeId b = m.mesh()->coordsToNode(Coordinates(2, 1));
    EXPECT_EQ(survivingDistance(m, fs, a, b), 3);
    const RouteCandidates rc = table.lookup(a, b);
    EXPECT_FALSE(rc.contains(px()));
    EXPECT_EQ(rc.count(), 2); // detour north or south
}

TEST(FaultAware, WalksDeliverUnderRandomFailures)
{
    // Property: with a random (connected) failure set, following any
    // candidate chain reaches the destination in the surviving
    // shortest distance.
    const Topology m = makeSquareMesh(5);
    Rng rng(21);
    FailureSet fs;
    int failed = 0;
    while (failed < 4) {
        const NodeId n = static_cast<NodeId>(rng.nextBounded(25));
        const PortId p = static_cast<PortId>(1 + rng.nextBounded(4));
        if (m.neighbor(n, p) == kInvalidNode || fs.isFailed(n, p))
            continue;
        FailureSet trial = fs;
        trial.fail(m, n, p);
        try {
            (void)programFaultAwareTable(m, trial); // connectivity ok?
        } catch (const ConfigError&) {
            continue;
        }
        fs = trial;
        ++failed;
    }
    const FullTable table = programFaultAwareTable(m, fs);
    for (int trial = 0; trial < 400; ++trial) {
        NodeId cur = static_cast<NodeId>(rng.nextBounded(25));
        const NodeId dest = static_cast<NodeId>(rng.nextBounded(25));
        const int want = survivingDistance(m, fs, cur, dest);
        ASSERT_GE(want, 0);
        int hops = 0;
        while (cur != dest) {
            const RouteCandidates rc = table.lookup(cur, dest);
            const PortId p = rc.at(static_cast<int>(
                rng.nextBounded(static_cast<std::uint64_t>(
                    rc.count()))));
            ASSERT_FALSE(fs.isFailed(cur, p));
            cur = m.neighbor(cur, p);
            ASSERT_NE(cur, kInvalidNode);
            ASSERT_LE(++hops, want);
        }
        EXPECT_EQ(hops, want);
    }
}

TEST(FaultAware, DisconnectionIsReported)
{
    // Cut node (0,0) off completely: both its links fail.
    const Topology m = makeSquareMesh(3);
    FailureSet fs;
    fs.fail(m, 0, px());
    fs.fail(m, 0, MeshShape::port(1, Direction::Plus));
    EXPECT_THROW(programFaultAwareTable(m, fs), ConfigError);
}

TEST(FaultAware, EconomicalStorageCannotHoldFaultTables)
{
    // The concrete Table 5 trade-off: a fault-reprogrammed table stops
    // being a function of the sign vector, so ES rejects it. Build the
    // equivalent algorithm wrapper and check sign-representability
    // breaks: two destinations with the same sign get different
    // candidates at the router next to the failure.
    const Topology m = makeSquareMesh(4);
    FailureSet fs;
    fs.fail(m, m.mesh()->coordsToNode(Coordinates(1, 1)), px());
    const FullTable table = programFaultAwareTable(m, fs);
    // From (0,1), destinations (1,1) and (2,1) share sign (+, 0) but
    // need different entries: the direct hop vs the detour DAG that
    // includes sign-unproductive +-Y ports.
    const NodeId router = m.mesh()->coordsToNode(Coordinates(0, 1));
    const RouteCandidates near_rc =
        table.lookup(router, m.mesh()->coordsToNode(Coordinates(1, 1)));
    const RouteCandidates far_rc =
        table.lookup(router, m.mesh()->coordsToNode(Coordinates(2, 1)));
    EXPECT_NE(near_rc, far_rc);
    EXPECT_EQ(near_rc.count(), 1);
    EXPECT_EQ(far_rc.count(), 3);
    EXPECT_TRUE(far_rc.contains(MeshShape::port(1,
                                                   Direction::Plus)));
    EXPECT_TRUE(far_rc.contains(MeshShape::port(1,
                                                   Direction::Minus)));
}

} // namespace
} // namespace lapses
