/**
 * @file
 * Unit tests for economical storage (Section 5.2), including the exact
 * Fig. 7 North-Last programming example.
 */

#include <gtest/gtest.h>

#include "routing/algorithm_factory.hpp"
#include "routing/turn_model.hpp"
#include "tables/economical_storage.hpp"

namespace lapses
{
namespace
{

TEST(EconomicalStorage, NineEntriesFor2D)
{
    const Topology m = makeSquareMesh(16);
    const EconomicalStorageTable table(m);
    EXPECT_EQ(table.entriesPerRouter(), 9u);
    EXPECT_EQ(table.name(), "economical-storage");
    EXPECT_TRUE(table.supportsAdaptive());
}

TEST(EconomicalStorage, TwentySevenEntriesFor3D)
{
    const Topology m = makeCubeMesh(4);
    const EconomicalStorageTable table(m);
    EXPECT_EQ(table.entriesPerRouter(), 27u);
}

TEST(EconomicalStorage, EntriesIndependentOfNetworkSize)
{
    // The paper's scalability claim: the T3D's 2048-entry table
    // becomes 27 entries; any k keeps 3^n entries.
    for (int k : {4, 8, 16}) {
        const EconomicalStorageTable t2(makeSquareMesh(k));
        EXPECT_EQ(t2.entriesPerRouter(), 9u);
    }
}

TEST(EconomicalStorage, MatchesEveryAlgorithmExhaustively)
{
    // The central claim of Section 5.2.2: economical storage loses no
    // flexibility; all the library's mesh algorithms program into it
    // exactly (validated against every (router, dest) pair).
    const Topology m = makeSquareMesh(6);
    for (RoutingAlgo a :
         {RoutingAlgo::DeterministicXY, RoutingAlgo::DeterministicYX,
          RoutingAlgo::DuatoFullyAdaptive, RoutingAlgo::NorthLast,
          RoutingAlgo::WestFirst, RoutingAlgo::NegativeFirst}) {
        const RoutingAlgorithmPtr algo = makeRoutingAlgorithm(a, m);
        const EconomicalStorageTable table(m, *algo);
        for (NodeId r = 0; r < m.numNodes(); ++r) {
            for (NodeId d = 0; d < m.numNodes(); ++d) {
                EXPECT_EQ(table.lookup(r, d), algo->route(r, d))
                    << algo->name() << " r=" << r << " d=" << d;
            }
        }
    }
}

TEST(EconomicalStorage, MatchesDuatoIn3D)
{
    const Topology m = makeCubeMesh(3);
    const RoutingAlgorithmPtr algo =
        makeRoutingAlgorithm(RoutingAlgo::DuatoFullyAdaptive, m);
    const EconomicalStorageTable table(m, *algo);
    for (NodeId r = 0; r < m.numNodes(); ++r) {
        for (NodeId d = 0; d < m.numNodes(); ++d)
            EXPECT_EQ(table.lookup(r, d), algo->route(r, d));
    }
}

/**
 * Fig. 7(d), row by row: North-Last programming of router (1,1) in a
 * 3x3 mesh. The paper's port labels are 1 = -Y, 2 = -X, 3 = +Y,
 * 4 = +X, 0 = local.
 */
TEST(EconomicalStorage, Fig7NorthLastTableExact)
{
    const Topology m = makeSquareMesh(3);
    const TurnModelRouting nl(m, TurnModel::NorthLast);
    const EconomicalStorageTable table(m, nl);
    const NodeId router = m.mesh()->coordsToNode(Coordinates(1, 1)); // node 4

    const PortId east = MeshShape::port(0, Direction::Plus);
    const PortId west = MeshShape::port(0, Direction::Minus);
    const PortId north = MeshShape::port(1, Direction::Plus);
    const PortId south = MeshShape::port(1, Direction::Minus);

    struct Fig7Row
    {
        int destX, destY;
        std::vector<PortId> northLastPorts;
    };
    const std::vector<Fig7Row> rows = {
        {0, 0, {west, south}},  // paper entry "2, 1"
        {1, 0, {south}},        // "1"
        {2, 0, {east, south}},  // "4, 1"
        {0, 1, {west}},         // "2"
        {1, 1, {kLocalPort}},   // "0"
        {2, 1, {east}},         // "4"
        {0, 2, {west}},         // "2"  (candidates 2,3 - north denied)
        {1, 2, {north}},        // "3"
        {2, 2, {east}},         // "4"  (candidates 4,3 - north denied)
    };

    for (const auto& row : rows) {
        const NodeId dest =
            m.mesh()->coordsToNode(Coordinates(row.destX, row.destY));
        const RouteCandidates rc = table.lookup(router, dest);
        ASSERT_EQ(rc.count(),
                  static_cast<int>(row.northLastPorts.size()))
            << "dest (" << row.destX << "," << row.destY << ")";
        for (PortId p : row.northLastPorts)
            EXPECT_TRUE(rc.contains(p))
                << "dest (" << row.destX << "," << row.destY << ")";
    }
}

TEST(EconomicalStorage, ManualProgrammingRoundTrip)
{
    // The Fig. 7(d) configuration interface: program entries by sign.
    const Topology m = makeSquareMesh(3);
    EconomicalStorageTable table(m);
    const NodeId router = m.mesh()->coordsToNode(Coordinates(1, 1));

    RouteCandidates rc;
    rc.add(MeshShape::port(0, Direction::Plus));
    rc.add(MeshShape::port(1, Direction::Plus));
    const SignVector sv(Coordinates(1, 1), Coordinates(2, 2));
    table.setEntry(router, sv, rc);
    EXPECT_EQ(table.entry(router, sv), rc);
    // lookup() uses the comparator-computed sign.
    EXPECT_EQ(table.lookup(router, m.mesh()->coordsToNode(Coordinates(2, 2))),
              rc);
}

TEST(EconomicalStorage, InfeasibleEdgeSignsStayEmpty)
{
    // A router on the +X edge can never see sign (+, 0).
    const Topology m = makeSquareMesh(4);
    const RoutingAlgorithmPtr algo =
        makeRoutingAlgorithm(RoutingAlgo::DeterministicXY, m);
    const EconomicalStorageTable table(m, *algo);
    const NodeId edge_router = m.mesh()->coordsToNode(Coordinates(3, 1));
    SignVector sv;
    sv = SignVector(Coordinates(0, 0), Coordinates(1, 0)); // (+, 0)
    EXPECT_TRUE(table.entry(edge_router, sv).empty());
}

TEST(EconomicalStorage, RejectsTorus)
{
    const Topology t = makeSquareMesh(4, true);
    EXPECT_THROW(EconomicalStorageTable{t}, ConfigError);
}

} // namespace
} // namespace lapses
