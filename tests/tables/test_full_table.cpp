/**
 * @file
 * Unit tests for full-table routing plus packed-entry encoding.
 */

#include <gtest/gtest.h>

#include "routing/duato.hpp"
#include "routing/dimension_order.hpp"
#include "tables/full_table.hpp"
#include "tables/route_entry.hpp"

namespace lapses
{
namespace
{

TEST(FullTable, ReproducesAlgorithmExactly)
{
    const Topology m = makeSquareMesh(5);
    const DuatoAdaptiveRouting duato(m);
    const FullTable table(m, duato);
    for (NodeId r = 0; r < m.numNodes(); ++r) {
        for (NodeId d = 0; d < m.numNodes(); ++d)
            EXPECT_EQ(table.lookup(r, d), duato.route(r, d));
    }
}

TEST(FullTable, EntriesPerRouterIsN)
{
    const Topology m = makeSquareMesh(5);
    const auto xy = DimensionOrderRouting::xy(m);
    const FullTable table(m, xy);
    EXPECT_EQ(table.entriesPerRouter(), 25u);
    EXPECT_TRUE(table.supportsAdaptive());
    EXPECT_EQ(table.name(), "full-table");
}

TEST(FullTable, SetEntryReprograms)
{
    // Full tables allow per-(router, destination) reprogramming — the
    // flexibility the paper notes commercial routers expose.
    const Topology m = makeSquareMesh(4);
    const auto xy = DimensionOrderRouting::xy(m);
    FullTable table(m, xy);
    RouteCandidates custom;
    custom.add(MeshShape::port(1, Direction::Plus));
    table.setEntry(0, 15, custom);
    EXPECT_EQ(table.lookup(0, 15), custom);
    // Other entries untouched.
    EXPECT_EQ(table.lookup(0, 14), xy.route(0, 14));
}

TEST(FullTable, EjectionAtSelf)
{
    const Topology m = makeSquareMesh(4);
    const auto xy = DimensionOrderRouting::xy(m);
    const FullTable table(m, xy);
    for (NodeId r = 0; r < m.numNodes(); ++r)
        EXPECT_TRUE(table.lookup(r, r).isEjection());
}

TEST(RouteEntry, PortFieldBitsCoverPorts)
{
    EXPECT_EQ(portFieldBits(5), 3);  // 5 ports + absent code -> 3 bits
    EXPECT_EQ(portFieldBits(7), 3);  // 3-D router: 7 ports + absent
    EXPECT_EQ(portFieldBits(8), 4);
}

TEST(RouteEntry, PackUnpackRoundTripsAdaptiveEntry)
{
    RouteCandidates rc;
    rc.add(1);
    rc.add(3);
    rc.setEscapePort(1);
    rc.setEscapeClass(1);
    const RouteCandidates back =
        unpackRouteEntry(packRouteEntry(rc, 5), 5);
    EXPECT_EQ(back, rc);
}

TEST(RouteEntry, PackUnpackRoundTripsDeterministicEntry)
{
    RouteCandidates rc;
    rc.add(4);
    const RouteCandidates back =
        unpackRouteEntry(packRouteEntry(rc, 5), 5);
    EXPECT_EQ(back, rc);
    EXPECT_EQ(back.escapePort(), kInvalidPort);
}

TEST(RouteEntry, PackUnpackRoundTripsEveryTableEntry)
{
    // Property sweep: every entry of a programmed table encodes into
    // hardware bits and back without loss.
    const Topology m = makeSquareMesh(4);
    const DuatoAdaptiveRouting duato(m);
    const FullTable table(m, duato);
    for (NodeId r = 0; r < m.numNodes(); ++r) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            const RouteCandidates rc = table.lookup(r, d);
            EXPECT_EQ(unpackRouteEntry(packRouteEntry(rc, m.numPorts()),
                                       m.numPorts()),
                      rc);
        }
    }
}

TEST(RouteEntry, PackedBitsFitBudget)
{
    // 2-D: 4 candidate fields + escape field (3 bits each) + 2 class
    // bits = 17 bits.
    EXPECT_EQ(packedEntryBits(5), 17);
    EXPECT_LE(packedEntryBits(7), 32);
}

} // namespace
} // namespace lapses
