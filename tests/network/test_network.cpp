/**
 * @file
 * Network-level tests: delivery, conservation, backpressure, and exact
 * contention-free latency through the full NIC-router-link stack.
 */

#include <gtest/gtest.h>

#include "core/simulation.hpp"

namespace lapses
{
namespace
{

SimConfig
tinyConfig()
{
    SimConfig cfg;
    cfg.radices = {4, 4};
    cfg.model = RouterModel::LaProud;
    cfg.routing = RoutingAlgo::DuatoFullyAdaptive;
    cfg.table = TableKind::Full;
    cfg.selector = SelectorKind::StaticXY;
    cfg.traffic = TrafficKind::Uniform;
    cfg.normalizedLoad = 0.1;
    cfg.msgLen = 4;
    cfg.warmupMessages = 50;
    cfg.measureMessages = 500;
    return cfg;
}

TEST(Network, DeliversEveryMeasuredMessage)
{
    Simulation sim(tinyConfig());
    const SimStats st = sim.run();
    EXPECT_FALSE(st.saturated);
    EXPECT_EQ(st.deliveredMessages, st.injectedMessages);
    EXPECT_GE(st.deliveredMessages, 500u);
    EXPECT_EQ(st.deliveredFlits, st.deliveredMessages * 4);
}

TEST(Network, FlitConservationAfterDrain)
{
    // After the run drains, nothing may remain buffered anywhere.
    SimConfig cfg = tinyConfig();
    Simulation sim(cfg);
    (void)sim.run();
    Network& net = sim.network();
    // Stop injection by stepping without new arrivals is not possible
    // in open loop, so check a weaker invariant: delivered totals can
    // never exceed created totals, and occupancy is bounded by what is
    // still in flight.
    EXPECT_LE(net.deliveredTotal(), net.createdTotal());
    EXPECT_LE(net.totalOccupancy(),
              (net.createdTotal() - net.deliveredTotal() +
               net.totalBacklog() + 64) * 4);
}

TEST(Network, ContentionFreeLatencyFormulaLaProud)
{
    // At near-zero load the measured network latency must match the
    // pipeline model exactly: (4 router stages + 1 link) per hop, the
    // 2-cycle injection link, and serialization (L-1).
    SimConfig cfg = tinyConfig();
    cfg.normalizedLoad = 0.02;
    cfg.msgLen = 4;
    Simulation sim(cfg);
    const SimStats st = sim.run();
    ASSERT_FALSE(st.saturated);
    const double expected =
        2.0 + 5.0 * st.hops.mean() + (cfg.msgLen - 1);
    EXPECT_NEAR(st.meanNetworkLatency(), expected, 1.0);
}

TEST(Network, ContentionFreeLatencyFormulaProud)
{
    // PROUD spends one extra stage per router: 6 cycles per hop
    // (Table 2: router latency 5 + link delay 1).
    SimConfig cfg = tinyConfig();
    cfg.model = RouterModel::Proud;
    cfg.normalizedLoad = 0.02;
    Simulation sim(cfg);
    const SimStats st = sim.run();
    ASSERT_FALSE(st.saturated);
    const double expected =
        2.0 + 6.0 * st.hops.mean() + (cfg.msgLen - 1);
    EXPECT_NEAR(st.meanNetworkLatency(), expected, 1.0);
}

TEST(Network, LookaheadSavesOneCyclePerHop)
{
    SimConfig cfg = tinyConfig();
    cfg.normalizedLoad = 0.02;
    cfg.seed = 77;
    Simulation la(cfg);
    const SimStats st_la = la.run();
    cfg.model = RouterModel::Proud;
    Simulation proud(cfg);
    const SimStats st_pr = proud.run();
    // Same seed, same traffic: the gap is exactly one cycle per hop.
    EXPECT_NEAR(st_pr.meanNetworkLatency() - st_la.meanNetworkLatency(),
                st_la.hops.mean(), 0.5);
}

TEST(Network, HopsMatchMinimalDistancePlusOne)
{
    // Minimal routing: hops = Manhattan distance + 1 (the destination
    // router also forwards to its NIC). Mean distance on a k-mesh
    // under uniform traffic is 2*(k^2-1)/(3k) (excluding self).
    SimConfig cfg = tinyConfig();
    Simulation sim(cfg);
    const SimStats st = sim.run();
    const double k = 4.0;
    const double mean_dist =
        2.0 * (k * k - 1.0) / (3.0 * k) * (16.0 / 15.0);
    EXPECT_NEAR(st.hops.mean(), mean_dist + 1.0, 0.25);
}

TEST(Network, ProgressCounterAdvances)
{
    SimConfig cfg = tinyConfig();
    Simulation sim(cfg);
    Network& net = sim.network();
    const std::uint64_t before = net.progressCounter();
    sim.stepCycles(200);
    EXPECT_GT(net.progressCounter(), before);
}

TEST(Network, TotalLatencyIncludesSourceQueueing)
{
    // At saturating load the source queues grow, so total latency
    // must exceed network latency.
    SimConfig cfg = tinyConfig();
    cfg.traffic = TrafficKind::Transpose;
    cfg.normalizedLoad = 1.2;
    cfg.measureMessages = 800;
    cfg.latencySatCutoff = 1e9; // let queues build for the check
    cfg.backlogSatPerNode = 1e9;
    cfg.maxCycles = 30000;
    Simulation sim(cfg);
    const SimStats st = sim.run();
    EXPECT_GT(st.totalLatency.mean(), st.networkLatency.mean());
}

TEST(Network, BackpressureNeverOverflowsBuffers)
{
    // Overload the network; LAPSES_ASSERT in RingBuffer aborts on any
    // credit accounting error, so surviving the run is the assertion.
    SimConfig cfg = tinyConfig();
    cfg.traffic = TrafficKind::BitReversal;
    cfg.normalizedLoad = 1.5;
    cfg.measureMessages = 500;
    cfg.maxCycles = 20000;
    Simulation sim(cfg);
    const SimStats st = sim.run();
    EXPECT_TRUE(st.saturated || st.deliveredMessages > 0);
}

TEST(Network, DeterministicAcrossRuns)
{
    SimConfig cfg = tinyConfig();
    cfg.seed = 1234;
    Simulation a(cfg);
    Simulation b(cfg);
    const SimStats sa = a.run();
    const SimStats sb = b.run();
    EXPECT_DOUBLE_EQ(sa.meanLatency(), sb.meanLatency());
    EXPECT_EQ(sa.deliveredMessages, sb.deliveredMessages);
    EXPECT_EQ(sa.deliveredFlits, sb.deliveredFlits);
}

TEST(Network, SeedChangesTraffic)
{
    SimConfig cfg = tinyConfig();
    cfg.seed = 1;
    Simulation a(cfg);
    cfg.seed = 2;
    Simulation b(cfg);
    EXPECT_NE(a.run().meanLatency(), b.run().meanLatency());
}

} // namespace
} // namespace lapses
