/**
 * @file
 * Shard-boundary property tests for the parallel kernel. The sharding
 * contract (DESIGN.md "Parallel kernel") is that the cut points are
 * pure bookkeeping: for ANY strictly ascending set of interior cuts,
 * wire events crossing a boundary drain in exactly the sequential
 * (node, port, wire-kind) order, so every externally observable
 * sequence — the delivery-hook stream, occupancy, progress, the work
 * counters — is byte-identical to the single-shard active kernel and
 * the scan oracle. These tests build networks directly through
 * NetworkParams::shardBoundaries to drive randomized and adversarial
 * cuts the balanced partition would never produce, including slivers
 * that spend most cycles with no active component (the idle-shard
 * fast-forward path).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/simulation.hpp"
#include "network/network.hpp"
#include "routing/algorithm_factory.hpp"
#include "tables/table_factory.hpp"
#include "topology/mesh.hpp"
#include "traffic/injection.hpp"
#include "traffic/patterns.hpp"

namespace lapses
{
namespace
{

/** A directly constructed network plus everything it borrows, with a
 *  delivery-hook recorder attached. */
struct NetRig
{
    MeshTopology topo;
    RoutingAlgorithmPtr algo;
    RoutingTablePtr table;
    TrafficPatternPtr pattern;
    std::unique_ptr<Network> net;
    /** Every delivery in arrival order: (message id, cycle). */
    std::vector<std::pair<MessageId, Cycle>> deliveries;

    NetRig(const std::vector<int>& radices, KernelKind kernel,
           std::vector<NodeId> boundaries, double load,
           std::uint64_t seed)
        : topo(radices, false)
    {
        algo = makeRoutingAlgorithm(RoutingAlgo::DuatoFullyAdaptive,
                                    topo);
        table = makeRoutingTable(TableKind::Full, topo, *algo);
        pattern = makeTrafficPattern(TrafficKind::Uniform, topo);

        NetworkParams np;
        np.router.vcsPerPort = 2;
        np.router.inBufDepth = 8;
        np.router.outBufDepth = 8;
        np.router.lookahead = true;
        np.router.escapeVcs = 1;
        np.nic.numVcs = 2;
        np.nic.routerBufDepth = 8;
        np.nic.msgLen = 4;
        np.nic.lookahead = true;
        np.nic.msgsPerCycle = msgRateForLoad(topo, load, np.nic.msgLen);
        np.seed = seed;
        np.kernel = kernel;
        np.intraJobs = 1; // overridden by explicit boundaries
        np.shardBoundaries = std::move(boundaries);
        net = std::make_unique<Network>(topo, np, *table,
                                        algo->usesEscapeChannels(),
                                        *pattern);
        net->setDeliveryHook(&NetRig::record, this);
    }

    static void
    record(void* ctx, const MessageDescriptor& msg, Cycle now)
    {
        static_cast<NetRig*>(ctx)->deliveries.emplace_back(msg.id, now);
    }
};

/** Random strictly ascending interior cut points for an n-node mesh. */
std::vector<NodeId>
randomCuts(std::mt19937& rng, NodeId n)
{
    std::uniform_int_distribution<int> count_dist(1, 7);
    const int want = count_dist(rng);
    std::vector<NodeId> all;
    for (NodeId b = 1; b < n; ++b)
        all.push_back(b);
    std::shuffle(all.begin(), all.end(), rng);
    all.resize(std::min<std::size_t>(
        static_cast<std::size_t>(want), all.size()));
    std::sort(all.begin(), all.end());
    return all;
}

std::string
describeCuts(const std::vector<NodeId>& cuts)
{
    std::string s = "cuts{";
    for (const NodeId b : cuts)
        s += std::to_string(b) + ',';
    s += '}';
    return s;
}

TEST(ShardBoundary, RandomizedCutsMatchSequentialDeliveryOrder)
{
    // Property: for randomized shard cuts on a 5x5 mesh, the parallel
    // kernel's delivery stream (order included) and per-cycle counters
    // equal the scan oracle's. Scan delivers wires by one global
    // ascending (node, port, wire-kind) sweep, so equality here IS the
    // boundary-drain ordering contract.
    std::mt19937 rng(0xC0FFEEu);
    const std::vector<int> radices = {5, 5};
    for (int trial = 0; trial < 8; ++trial) {
        const std::vector<NodeId> cuts = randomCuts(rng, 25);
        const std::string name =
            "trial " + std::to_string(trial) + ' ' + describeCuts(cuts);

        NetRig oracle(radices, KernelKind::Scan, {}, 0.3, 777);
        NetRig sharded(radices, KernelKind::Parallel, cuts, 0.3, 777);
        ASSERT_EQ(sharded.net->shardCount(), cuts.size() + 1) << name;

        for (Cycle t = 0; t < 600; ++t) {
            oracle.net->step();
            sharded.net->stepUntil(oracle.net->now());
            ASSERT_EQ(sharded.net->now(), oracle.net->now()) << name;
            ASSERT_EQ(sharded.net->totalOccupancy(),
                      oracle.net->totalOccupancy())
                << name << " at cycle " << t;
            ASSERT_EQ(sharded.net->progressCounter(),
                      oracle.net->progressCounter())
                << name << " at cycle " << t;
            ASSERT_EQ(sharded.net->totalOccupancy(),
                      sharded.net->totalOccupancySlow())
                << name << " merge drift at cycle " << t;
        }
        // The delivery streams must be identical element by element —
        // same messages, same cycles, same ORDER within each cycle.
        ASSERT_EQ(sharded.deliveries.size(), oracle.deliveries.size())
            << name;
        for (std::size_t i = 0; i < oracle.deliveries.size(); ++i) {
            ASSERT_EQ(sharded.deliveries[i], oracle.deliveries[i])
                << name << " delivery " << i;
        }
        EXPECT_GT(oracle.deliveries.size(), 0u) << name;
    }
}

TEST(ShardBoundary, AdversarialSliverCutsStayLockstep)
{
    // Three 1-node shards carved off the corner plus the 13-node rest:
    // the slivers spend most low-load cycles with no active component,
    // so the coordinator constantly crosses idle shards while others
    // work. Everything must still match the scan oracle exactly.
    const std::vector<int> radices = {4, 4};
    const std::vector<NodeId> cuts = {1, 2, 3};
    NetRig oracle(radices, KernelKind::Scan, {}, 0.05, 4242);
    NetRig sharded(radices, KernelKind::Parallel, cuts, 0.05, 4242);
    ASSERT_EQ(sharded.net->shardCount(), 4u);

    for (Cycle t = 0; t < 2000; ++t) {
        oracle.net->step();
        sharded.net->stepUntil(oracle.net->now());
        ASSERT_EQ(sharded.net->now(), oracle.net->now());
        ASSERT_EQ(sharded.net->totalOccupancy(),
                  oracle.net->totalOccupancy())
            << " at cycle " << t;
        ASSERT_EQ(sharded.net->progressCounter(),
                  oracle.net->progressCounter())
            << " at cycle " << t;
    }
    ASSERT_EQ(sharded.deliveries, oracle.deliveries);
}

TEST(ShardBoundary, IdleShardsFastForwardLikeActive)
{
    // Cut injection, drain, and step a long span: a fully idle sharded
    // network must fast-forward exactly as the active kernel does —
    // same clock, same fast-forward count, no component work at all.
    auto drain = [](NetRig& rig) {
        for (Cycle t = 0; t < 400; ++t)
            rig.net->step();
        rig.net->setInjectionEnabled(false);
        Cycle waited = 0;
        while ((rig.net->totalOccupancy() > 0 ||
                rig.net->totalBacklog() > 0) &&
               waited < 20000) {
            rig.net->stepUntil(rig.net->now() + 100);
            ++waited;
        }
        ASSERT_EQ(rig.net->totalOccupancy(), 0u) << "drain hung";
    };
    const std::vector<int> radices = {4, 4};
    NetRig active(radices, KernelKind::Active, {}, 0.2, 99);
    NetRig sharded(radices, KernelKind::Parallel, {5, 9}, 0.2, 99);
    drain(active);
    drain(sharded);
    ASSERT_EQ(sharded.net->now(), active.net->now());
    ASSERT_EQ(sharded.deliveries, active.deliveries);

    const Network::KernelCounters a0 = active.net->kernelCounters();
    const Network::KernelCounters p0 = sharded.net->kernelCounters();
    const Cycle horizon = active.net->now() + 50000;
    while (active.net->now() < horizon) {
        active.net->stepUntil(horizon);
        sharded.net->stepUntil(horizon);
        ASSERT_EQ(sharded.net->now(), active.net->now());
    }
    const Network::KernelCounters a1 = active.net->kernelCounters();
    const Network::KernelCounters p1 = sharded.net->kernelCounters();
    // The drained span is crossed by fast-forward, not stepping: no
    // router work on either kernel, identical skip counts.
    EXPECT_EQ(a1.routerSteps, a0.routerSteps);
    EXPECT_EQ(p1.routerSteps, p0.routerSteps);
    EXPECT_EQ(p1.fastForwardedCycles - p0.fastForwardedCycles,
              a1.fastForwardedCycles - a0.fastForwardedCycles);
    EXPECT_GT(p1.fastForwardedCycles, p0.fastForwardedCycles);
}

TEST(ShardBoundary, InvalidBoundariesRefuse)
{
    const std::vector<int> radices = {4, 4};
    auto build = [&](std::vector<NodeId> cuts) {
        NetRig rig(radices, KernelKind::Parallel, std::move(cuts),
                   0.1, 1);
    };
    EXPECT_THROW(build({0}), ConfigError);        // not interior
    EXPECT_THROW(build({16}), ConfigError);       // past the edge
    EXPECT_THROW(build({4, 4}), ConfigError);     // duplicate
    EXPECT_THROW(build({9, 3}), ConfigError);     // not ascending
    EXPECT_NO_THROW(build({1, 15}));              // extremes are legal
}

TEST(ShardBoundary, ParallelSaturationSoakCountersExactEveryBarrier)
{
    // Soak at saturating load with the balanced 4-shard cut: every
    // cycle barrier must leave the O(1) occupancy and progress
    // counters exactly equal to their recomputed sums. Any lost or
    // double-merged per-shard delta (the classic parallel-reduction
    // bug) trips within one cycle of happening.
    SimConfig cfg;
    cfg.radices = {4, 4};
    cfg.msgLen = 4;
    cfg.normalizedLoad = 1.5;
    cfg.warmupMessages = 50;
    cfg.measureMessages = 5000;
    cfg.seed = 31337;
    cfg.kernel = KernelKind::Parallel;
    cfg.intraJobs = 4;
    Simulation sim(cfg);
    ASSERT_EQ(sim.network().shardCount(), 4u);
    for (Cycle t = 0; t < 3000; ++t) {
        sim.stepCycles(1);
        ASSERT_EQ(sim.network().totalOccupancy(),
                  sim.network().totalOccupancySlow())
            << "occupancy merge drift at cycle " << t;
        ASSERT_EQ(sim.network().progressCounter(),
                  sim.network().progressCounterSlow())
            << "progress merge drift at cycle " << t;
    }
    // The soak genuinely saturated the network (the regime under
    // test), with every shard holding work.
    EXPECT_GT(sim.network().totalOccupancy(),
              static_cast<std::size_t>(cfg.radices[0]));
}

} // namespace
} // namespace lapses
