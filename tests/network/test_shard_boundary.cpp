/**
 * @file
 * Shard-boundary property tests for the parallel kernel. The sharding
 * contract (DESIGN.md "Parallel kernel") is that the cut points are
 * pure bookkeeping: for ANY strictly ascending set of interior cuts,
 * boundary-crossing wire events drain through the coordinator in the
 * sequential (node, port, wire-kind) order while each shard's worker
 * delivers its intra-shard events in the same per-shard order, so
 * every externally observable sequence — the per-destination
 * delivery-hook streams, occupancy, progress, the work counters — is
 * byte-identical to the single-shard active kernel and the scan
 * oracle. Deliveries eject on the destination's owning worker, so the
 * observable ordering contract is per destination node (a single
 * global stream across shards is not defined under worker delivery).
 * These tests build networks directly through
 * NetworkParams::shardBoundaries to drive randomized and adversarial
 * cuts the balanced partition would never produce, including slivers
 * that spend most cycles with no active component (the idle-shard
 * fast-forward path) and multi-cycle batches that must break exactly
 * at fault and telemetry boundaries.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/simulation.hpp"
#include "network/network.hpp"
#include "routing/algorithm_factory.hpp"
#include "tables/table_factory.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/mesh.hpp"
#include "traffic/injection.hpp"
#include "traffic/patterns.hpp"

namespace lapses
{
namespace
{

/** Optional NetRig knobs beyond the common (kernel, cuts, load, seed)
 *  set; defaults match the pre-batching rigs. */
struct RigOpts
{
    Cycle linkDelay = 1;
    Cycle maxBatch = 0; //!< 0 = auto (linkDelay + 1)
    Cycle telemetryWindow = 0;
    FaultSchedule faults;
    Cycle reconfigLatency = 40;
};

/** A directly constructed network plus everything it borrows, with a
 *  delivery-hook recorder attached. */
struct NetRig
{
    Topology topo;
    RoutingAlgorithmPtr algo;
    RoutingTablePtr table;
    TrafficPatternPtr pattern;
    std::unique_ptr<Network> net;
    /** Per-destination delivery streams: deliveries[d] holds node d's
     *  (message id, cycle) arrivals in ejection order. Node d ejects
     *  only on its shard's worker, so recording is race-free and the
     *  per-destination order is the canonical one. */
    std::vector<std::vector<std::pair<MessageId, Cycle>>> deliveries;

    NetRig(const std::vector<int>& radices, KernelKind kernel,
           std::vector<NodeId> boundaries, double load,
           std::uint64_t seed, RigOpts opts = {})
        : topo(makeMeshTopology(radices, false))
    {
        algo = makeRoutingAlgorithm(RoutingAlgo::DuatoFullyAdaptive,
                                    topo);
        table = makeRoutingTable(TableKind::Full, topo, *algo);
        pattern = makeTrafficPattern(TrafficKind::Uniform, topo);
        deliveries.resize(static_cast<std::size_t>(topo.numNodes()));

        NetworkParams np;
        np.router.vcsPerPort = 2;
        np.router.inBufDepth = 8;
        np.router.outBufDepth = 8;
        np.router.lookahead = true;
        np.router.escapeVcs = 1;
        np.nic.numVcs = 2;
        np.nic.routerBufDepth = 8;
        np.nic.msgLen = 4;
        np.nic.lookahead = true;
        np.nic.msgsPerCycle = msgRateForLoad(topo, load, np.nic.msgLen);
        np.seed = seed;
        np.kernel = kernel;
        np.intraJobs = 1; // overridden by explicit boundaries
        np.shardBoundaries = std::move(boundaries);
        np.linkDelay = opts.linkDelay;
        np.maxBatch = opts.maxBatch;
        np.telemetryWindow = opts.telemetryWindow;
        if (!opts.faults.empty())
            opts.faults.validate(topo);
        np.faults = std::move(opts.faults);
        np.reconfigLatency = opts.reconfigLatency;
        net = std::make_unique<Network>(topo, np, *table,
                                        algo->usesEscapeChannels(),
                                        *pattern);
        net->setDeliveryHook(&NetRig::record, this);
    }

    static void
    record(void* ctx, const MessageDescriptor& msg, Cycle now)
    {
        auto* rig = static_cast<NetRig*>(ctx);
        rig->deliveries[msg.dest].emplace_back(msg.id, now);
    }

    std::size_t
    deliveredCount() const
    {
        std::size_t n = 0;
        for (const auto& stream : deliveries)
            n += stream.size();
        return n;
    }
};

/** Assert a's per-destination delivery streams equal b's element by
 *  element — same messages, same cycles, same order at each node. */
void
expectSameDeliveryStreams(const NetRig& a, const NetRig& b,
                          const std::string& name)
{
    ASSERT_EQ(a.deliveries.size(), b.deliveries.size()) << name;
    for (std::size_t d = 0; d < a.deliveries.size(); ++d) {
        ASSERT_EQ(a.deliveries[d].size(), b.deliveries[d].size())
            << name << " dest " << d;
        for (std::size_t i = 0; i < a.deliveries[d].size(); ++i) {
            ASSERT_EQ(a.deliveries[d][i], b.deliveries[d][i])
                << name << " dest " << d << " delivery " << i;
        }
    }
}

/** Random strictly ascending interior cut points for an n-node mesh. */
std::vector<NodeId>
randomCuts(std::mt19937& rng, NodeId n)
{
    std::uniform_int_distribution<int> count_dist(1, 7);
    const int want = count_dist(rng);
    std::vector<NodeId> all;
    for (NodeId b = 1; b < n; ++b)
        all.push_back(b);
    std::shuffle(all.begin(), all.end(), rng);
    all.resize(std::min<std::size_t>(
        static_cast<std::size_t>(want), all.size()));
    std::sort(all.begin(), all.end());
    return all;
}

std::string
describeCuts(const std::vector<NodeId>& cuts)
{
    std::string s = "cuts{";
    for (const NodeId b : cuts)
        s += std::to_string(b) + ',';
    s += '}';
    return s;
}

TEST(ShardBoundary, RandomizedCutsMatchSequentialDeliveryOrder)
{
    // Property: for randomized shard cuts on a 5x5 mesh, the parallel
    // kernel's per-destination delivery streams and per-cycle counters
    // equal the scan oracle's. Scan delivers wires by one global
    // ascending (node, port, wire-kind) sweep, so equality here IS the
    // two-tier (boundary + intra-shard) ordering contract.
    std::mt19937 rng(0xC0FFEEu);
    const std::vector<int> radices = {5, 5};
    for (int trial = 0; trial < 8; ++trial) {
        const std::vector<NodeId> cuts = randomCuts(rng, 25);
        const std::string name =
            "trial " + std::to_string(trial) + ' ' + describeCuts(cuts);

        NetRig oracle(radices, KernelKind::Scan, {}, 0.3, 777);
        NetRig sharded(radices, KernelKind::Parallel, cuts, 0.3, 777);
        ASSERT_EQ(sharded.net->shardCount(), cuts.size() + 1) << name;

        for (Cycle t = 0; t < 600; ++t) {
            oracle.net->step();
            sharded.net->stepUntil(oracle.net->now());
            ASSERT_EQ(sharded.net->now(), oracle.net->now()) << name;
            ASSERT_EQ(sharded.net->totalOccupancy(),
                      oracle.net->totalOccupancy())
                << name << " at cycle " << t;
            ASSERT_EQ(sharded.net->progressCounter(),
                      oracle.net->progressCounter())
                << name << " at cycle " << t;
            ASSERT_EQ(sharded.net->totalOccupancy(),
                      sharded.net->totalOccupancySlow())
                << name << " merge drift at cycle " << t;
        }
        expectSameDeliveryStreams(sharded, oracle, name);
        EXPECT_GT(oracle.deliveredCount(), 0u) << name;
    }
}

TEST(ShardBoundary, AdversarialSliverCutsStayLockstep)
{
    // Three 1-node shards carved off the corner plus the 13-node rest:
    // the slivers spend most low-load cycles with no active component,
    // so the coordinator constantly crosses idle shards while others
    // work. Everything must still match the scan oracle exactly.
    const std::vector<int> radices = {4, 4};
    const std::vector<NodeId> cuts = {1, 2, 3};
    NetRig oracle(radices, KernelKind::Scan, {}, 0.05, 4242);
    NetRig sharded(radices, KernelKind::Parallel, cuts, 0.05, 4242);
    ASSERT_EQ(sharded.net->shardCount(), 4u);

    for (Cycle t = 0; t < 2000; ++t) {
        oracle.net->step();
        sharded.net->stepUntil(oracle.net->now());
        ASSERT_EQ(sharded.net->now(), oracle.net->now());
        ASSERT_EQ(sharded.net->totalOccupancy(),
                  oracle.net->totalOccupancy())
            << " at cycle " << t;
        ASSERT_EQ(sharded.net->progressCounter(),
                  oracle.net->progressCounter())
            << " at cycle " << t;
    }
    expectSameDeliveryStreams(sharded, oracle, "sliver cuts");
}

TEST(ShardBoundary, IdleShardsFastForwardLikeActive)
{
    // Cut injection, drain, and step a long span: a fully idle sharded
    // network must fast-forward exactly as the active kernel does —
    // same clock, same fast-forward count, no component work at all.
    auto drain = [](NetRig& rig) {
        for (Cycle t = 0; t < 400; ++t)
            rig.net->step();
        rig.net->setInjectionEnabled(false);
        Cycle waited = 0;
        while ((rig.net->totalOccupancy() > 0 ||
                rig.net->totalBacklog() > 0) &&
               waited < 20000) {
            rig.net->stepUntil(rig.net->now() + 100);
            ++waited;
        }
        ASSERT_EQ(rig.net->totalOccupancy(), 0u) << "drain hung";
    };
    const std::vector<int> radices = {4, 4};
    // Batch cap 1: this test pins per-call stepUntil parity (the
    // fast-forward skip counts), which is only defined when the
    // parallel kernel barriers every cycle like the active kernel.
    // Batching-vs-fast-forward interplay is covered by
    // BatchSizesAgreeOnCountersAndStreams.
    RigOpts opts;
    opts.maxBatch = 1;
    NetRig active(radices, KernelKind::Active, {}, 0.2, 99, opts);
    NetRig sharded(radices, KernelKind::Parallel, {5, 9}, 0.2, 99,
                   opts);
    drain(active);
    drain(sharded);
    ASSERT_EQ(sharded.net->now(), active.net->now());
    expectSameDeliveryStreams(sharded, active, "idle shards");

    const Network::KernelCounters a0 = active.net->kernelCounters();
    const Network::KernelCounters p0 = sharded.net->kernelCounters();
    const Cycle horizon = active.net->now() + 50000;
    while (active.net->now() < horizon) {
        active.net->stepUntil(horizon);
        sharded.net->stepUntil(horizon);
        ASSERT_EQ(sharded.net->now(), active.net->now());
    }
    const Network::KernelCounters a1 = active.net->kernelCounters();
    const Network::KernelCounters p1 = sharded.net->kernelCounters();
    // The drained span is crossed by fast-forward, not stepping: no
    // router work on either kernel, identical skip counts.
    EXPECT_EQ(a1.routerSteps, a0.routerSteps);
    EXPECT_EQ(p1.routerSteps, p0.routerSteps);
    EXPECT_EQ(p1.fastForwardedCycles - p0.fastForwardedCycles,
              a1.fastForwardedCycles - a0.fastForwardedCycles);
    EXPECT_GT(p1.fastForwardedCycles, p0.fastForwardedCycles);
}

TEST(ShardBoundary, BatchedSteppingMatchesScanOracle)
{
    // linkDelay 3 widens the safe lookahead to 4 cycles. Batch caps
    // 1, 2 and 4 must all reproduce the scan oracle exactly at every
    // 8-cycle checkpoint (stepUntil horizons cap batches, so every
    // variant lands on each checkpoint cycle precisely).
    const std::vector<int> radices = {4, 4};
    const std::vector<NodeId> cuts = {4, 8, 12};
    for (const Cycle batch : {Cycle{1}, Cycle{2}, Cycle{4}}) {
        const std::string name = "batch " + std::to_string(batch);
        RigOpts scan_opts;
        scan_opts.linkDelay = 3;
        RigOpts par_opts;
        par_opts.linkDelay = 3;
        par_opts.maxBatch = batch;
        NetRig oracle(radices, KernelKind::Scan, {}, 0.3, 777,
                      scan_opts);
        NetRig sharded(radices, KernelKind::Parallel, cuts, 0.3, 777,
                       par_opts);
        ASSERT_EQ(sharded.net->batchCap(), batch) << name;

        for (Cycle cp = 8; cp <= 800; cp += 8) {
            while (oracle.net->now() < cp)
                oracle.net->stepUntil(cp);
            while (sharded.net->now() < cp)
                sharded.net->stepUntil(cp);
            ASSERT_EQ(sharded.net->now(), oracle.net->now()) << name;
            ASSERT_EQ(sharded.net->totalOccupancy(),
                      oracle.net->totalOccupancy())
                << name << " at cycle " << cp;
            ASSERT_EQ(sharded.net->progressCounter(),
                      oracle.net->progressCounter())
                << name << " at cycle " << cp;
            ASSERT_EQ(sharded.net->totalOccupancy(),
                      sharded.net->totalOccupancySlow())
                << name << " merge drift at cycle " << cp;
        }
        expectSameDeliveryStreams(sharded, oracle, name);
        EXPECT_GT(oracle.deliveredCount(), 0u) << name;
    }
}

TEST(ShardBoundary, BatchSizesAgreeOnCountersAndStreams)
{
    // Batch cap 1 (barrier every cycle) versus the full 4-cycle
    // lookahead: identical work counters at every checkpoint and
    // identical per-destination streams. Fast-forward counts are NOT
    // pinned — a 1-cycle batch may skip idle stretches a wider batch
    // steps through — but component work must match exactly because
    // the active sets evolve identically.
    const std::vector<int> radices = {4, 4};
    const std::vector<NodeId> cuts = {4, 8, 12};
    RigOpts o1;
    o1.linkDelay = 3;
    o1.maxBatch = 1;
    RigOpts o4;
    o4.linkDelay = 3;
    o4.maxBatch = 4;
    NetRig a(radices, KernelKind::Parallel, cuts, 0.4, 1234, o1);
    NetRig b(radices, KernelKind::Parallel, cuts, 0.4, 1234, o4);
    for (Cycle cp = 8; cp <= 640; cp += 8) {
        while (a.net->now() < cp)
            a.net->stepUntil(cp);
        while (b.net->now() < cp)
            b.net->stepUntil(cp);
        const Network::KernelCounters ka = a.net->kernelCounters();
        const Network::KernelCounters kb = b.net->kernelCounters();
        ASSERT_EQ(ka.wireEventsDelivered, kb.wireEventsDelivered)
            << "at cycle " << cp;
        ASSERT_EQ(ka.nicSteps, kb.nicSteps) << "at cycle " << cp;
        ASSERT_EQ(ka.routerSteps, kb.routerSteps) << "at cycle " << cp;
    }
    // The same work also landed on the same shards.
    for (std::size_t s = 0; s < a.net->shardCount(); ++s) {
        const Network::KernelCounters& sa = a.net->shardCounters(s);
        const Network::KernelCounters& sb = b.net->shardCounters(s);
        EXPECT_EQ(sa.nicSteps, sb.nicSteps) << "shard " << s;
        EXPECT_EQ(sa.routerSteps, sb.routerSteps) << "shard " << s;
        EXPECT_EQ(sa.wireEventsDelivered, sb.wireEventsDelivered)
            << "shard " << s;
    }
    expectSameDeliveryStreams(a, b, "batch 1 vs 4");
}

TEST(ShardBoundary, FaultsMidBatchForceBarriersAtExactCycles)
{
    // A link down at cycle 402 and its repair at 450 both sit mid-way
    // through a 4-cycle batch window. The kernel must place a barrier
    // at exactly those cycles (batchCycles ends the batch at the next
    // fault event; the idle fast-forward also stops there), collapse
    // to 1-cycle batches while the failure is live, and keep the
    // whole faulted run byte-identical to the scan oracle.
    const std::vector<int> radices = {4, 4};
    const std::vector<NodeId> cuts = {4, 8, 12};
    auto makeOpts = [](Cycle max_batch) {
        RigOpts opts;
        opts.linkDelay = 3;
        opts.maxBatch = max_batch;
        opts.faults.addDown(402, 5, 1);
        opts.faults.addUp(450, 5, 1);
        opts.reconfigLatency = 37; // reconfig at 439 / 487, mid-batch
        return opts;
    };
    NetRig oracle(radices, KernelKind::Scan, {}, 0.3, 90210,
                  makeOpts(0));
    NetRig sharded(radices, KernelKind::Parallel, cuts, 0.3, 90210,
                   makeOpts(4));

    std::vector<Cycle> barriers;
    for (Cycle cp = 8; cp <= 800; cp += 8) {
        while (oracle.net->now() < cp)
            oracle.net->stepUntil(cp);
        while (sharded.net->now() < cp) {
            sharded.net->stepUntil(cp);
            barriers.push_back(sharded.net->now());
        }
        ASSERT_EQ(sharded.net->totalOccupancy(),
                  oracle.net->totalOccupancy())
            << "at cycle " << cp;
        ASSERT_EQ(sharded.net->progressCounter(),
                  oracle.net->progressCounter())
            << "at cycle " << cp;
    }
    // The stepping sequence paused exactly at both fault events and
    // both reconfiguration sweeps — no batch crossed them.
    for (const Cycle must_stop : {Cycle{402}, Cycle{439}, Cycle{450},
                                  Cycle{487}}) {
        EXPECT_TRUE(std::find(barriers.begin(), barriers.end(),
                              must_stop) != barriers.end())
            << "no barrier at cycle " << must_stop;
    }
    ASSERT_EQ(sharded.net->faultCounters().linkDownEvents, 1u);
    ASSERT_EQ(sharded.net->faultCounters().linkUpEvents, 1u);
    expectSameDeliveryStreams(sharded, oracle, "fault mid-batch");
}

TEST(ShardBoundary, TelemetryWindowsMidBatchStayByteIdentical)
{
    // A 6-cycle telemetry window never aligns with the 4-cycle batch
    // cap, so every capture forces a barrier mid-batch. The JSONL
    // telemetry streams must come out byte-for-byte equal to the scan
    // oracle's — same windows, same per-node counters, same idle
    // splits.
    const std::vector<int> radices = {4, 4};
    const std::vector<NodeId> cuts = {4, 8, 12};
    auto makeOpts = [](Cycle max_batch) {
        RigOpts opts;
        opts.linkDelay = 3;
        opts.maxBatch = max_batch;
        opts.telemetryWindow = 6;
        return opts;
    };
    NetRig oracle(radices, KernelKind::Scan, {}, 0.3, 5150,
                  makeOpts(0));
    NetRig sharded(radices, KernelKind::Parallel, cuts, 0.3, 5150,
                   makeOpts(4));
    TelemetryBuffer oracle_buf(oracle.topo.numNodes(),
                               oracle.topo.numPorts());
    TelemetryBuffer sharded_buf(sharded.topo.numNodes(),
                                sharded.topo.numPorts());
    oracle.net->attachTelemetryBuffer(&oracle_buf);
    sharded.net->attachTelemetryBuffer(&sharded_buf);

    for (Cycle cp = 8; cp <= 600; cp += 8) {
        while (oracle.net->now() < cp)
            oracle.net->stepUntil(cp);
        while (sharded.net->now() < cp)
            sharded.net->stepUntil(cp);
    }
    ASSERT_EQ(sharded_buf.windows(), oracle_buf.windows());
    ASSERT_GT(sharded_buf.windows(), 0u);
    std::ostringstream oracle_jsonl;
    std::ostringstream sharded_jsonl;
    oracle_buf.writeJsonl(oracle_jsonl);
    sharded_buf.writeJsonl(sharded_jsonl);
    EXPECT_EQ(sharded_jsonl.str(), oracle_jsonl.str());
    expectSameDeliveryStreams(sharded, oracle, "telemetry mid-batch");
}

TEST(ShardBoundary, InvalidBoundariesRefuse)
{
    const std::vector<int> radices = {4, 4};
    auto build = [&](std::vector<NodeId> cuts) {
        NetRig rig(radices, KernelKind::Parallel, std::move(cuts),
                   0.1, 1);
    };
    EXPECT_THROW(build({0}), ConfigError);        // not interior
    EXPECT_THROW(build({16}), ConfigError);       // past the edge
    EXPECT_THROW(build({4, 4}), ConfigError);     // duplicate
    EXPECT_THROW(build({9, 3}), ConfigError);     // not ascending
    EXPECT_NO_THROW(build({1, 15}));              // extremes are legal
}

TEST(ShardBoundary, ParallelSaturationSoakCountersExactEveryBarrier)
{
    // Soak at saturating load with the balanced 4-shard cut: every
    // cycle barrier must leave the O(1) occupancy and progress
    // counters exactly equal to their recomputed sums. Any lost or
    // double-merged per-shard delta (the classic parallel-reduction
    // bug) trips within one cycle of happening.
    SimConfig cfg;
    cfg.radices = {4, 4};
    cfg.msgLen = 4;
    cfg.normalizedLoad = 1.5;
    cfg.warmupMessages = 50;
    cfg.measureMessages = 5000;
    cfg.seed = 31337;
    cfg.kernel = KernelKind::Parallel;
    cfg.intraJobs = 4;
    Simulation sim(cfg);
    ASSERT_EQ(sim.network().shardCount(), 4u);
    for (Cycle t = 0; t < 3000; ++t) {
        sim.stepCycles(1);
        ASSERT_EQ(sim.network().totalOccupancy(),
                  sim.network().totalOccupancySlow())
            << "occupancy merge drift at cycle " << t;
        ASSERT_EQ(sim.network().progressCounter(),
                  sim.network().progressCounterSlow())
            << "progress merge drift at cycle " << t;
    }
    // The soak genuinely saturated the network (the regime under
    // test), with every shard holding work.
    EXPECT_GT(sim.network().totalOccupancy(),
              static_cast<std::size_t>(cfg.radices[0]));
}

} // namespace
} // namespace lapses
