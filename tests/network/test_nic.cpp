/**
 * @file
 * Unit tests for the NIC: flitization, VC allocation, link pacing,
 * credit respect, look-ahead header generation, and ejection
 * bookkeeping.
 */

#include <gtest/gtest.h>

#include <vector>

#include "network/nic.hpp"
#include "routing/duato.hpp"
#include "tables/full_table.hpp"

namespace lapses
{
namespace
{

/** Captures flits the NIC puts on the local link. */
class CaptureEnv : public Nic::Env
{
  public:
    struct Sent
    {
        VcId vc;
        Flit flit;
    };

    void
    injectFlit(VcId vc, const Flit& flit) override
    {
        sent.push_back({vc, flit});
    }

    std::vector<Sent> sent;
};

/** Counts delivered messages. */
class CountingSink : public DeliverySink
{
  public:
    void
    messageDelivered(MsgRef msg, Cycle) override
    {
        ++delivered;
        last = msg;
    }

    int delivered = 0;
    MsgRef last = kInvalidMsgRef;
};

class NicTest : public ::testing::Test
{
  protected:
    NicTest()
        : topo(makeSquareMesh(4)), algo(topo),
          table(topo, algo), pattern(topo)
    {}

    /** Tornado gives every node a fixed non-self destination. */
    class FixedPattern : public TrafficPattern
    {
      public:
        using TrafficPattern::TrafficPattern;
        std::string name() const override { return "fixed"; }
        NodeId
        pick(NodeId src, Rng&) const override
        {
            return (src + 5) % 16;
        }
    };

    Nic::Params
    params(double rate, int msg_len = 4, bool lookahead = false) const
    {
        Nic::Params p;
        p.numVcs = 2;
        p.routerBufDepth = 8;
        p.msgLen = msg_len;
        p.lookahead = lookahead;
        p.msgsPerCycle = rate;
        return p;
    }

    Topology topo;
    DuatoAdaptiveRouting algo;
    FullTable table;
    FixedPattern pattern;
    MessagePool pool;
};

TEST_F(NicTest, StepReportsActivityAndQuiescence)
{
    // Rate 0: the arrival process never fires, so after any step the
    // NIC is quiescent with no wake scheduled.
    Nic idle_nic(0, params(0.0), table, pattern, Rng{5}, pool);
    CaptureEnv env;
    const StepActivity idle = idle_nic.step(0, env);
    EXPECT_FALSE(idle.movedFlits);
    EXPECT_FALSE(idle.pendingWork);
    EXPECT_EQ(idle.nextWake, kNeverCycle);
    EXPECT_TRUE(idle_nic.isQuiescent(1));

    // A busy NIC reports pending work while its backlog streams, and
    // movedFlits on the cycles it puts a flit on the link.
    Nic nic(0, params(0.5, 4), table, pattern, Rng{5}, pool);
    Cycle now = 0;
    bool moved_any = false;
    bool pending_any = false;
    for (; now < 100; ++now) {
        const StepActivity r = nic.step(now, env);
        moved_any |= r.movedFlits;
        pending_any |= r.pendingWork;
        // While a message streams, the NIC may never claim quiescence.
        if (r.pendingWork)
            EXPECT_FALSE(nic.isQuiescent(now));
    }
    EXPECT_TRUE(moved_any);
    EXPECT_TRUE(pending_any);
    // With a positive rate the self-scheduled wake is always finite.
    const StepActivity last = nic.step(now, env);
    EXPECT_NE(last.nextWake, kNeverCycle);
    EXPECT_GT(last.nextWake, now);
}

TEST_F(NicTest, FlitizesMessagesInOrder)
{
    // One VC so messages cannot interleave on the link.
    Nic::Params p = params(0.05, 4);
    p.numVcs = 1;
    Nic nic(0, p, table, pattern, Rng{5}, pool);
    CaptureEnv env;
    Cycle now = 0;
    for (; now < 500 && env.sent.size() < 4; ++now)
        nic.step(now, env);
    // Return the first message's credits so the VC can be reused.
    for (int i = 0; i < 4; ++i)
        nic.acceptCredit(0);
    for (; now < 1000 && env.sent.size() < 8; ++now)
        nic.step(now, env);
    ASSERT_GE(env.sent.size(), 8u);
    // First message: Head, Body, Body, Tail with ascending seq.
    EXPECT_EQ(env.sent[0].flit.type, FlitType::Head);
    EXPECT_EQ(env.sent[1].flit.type, FlitType::Body);
    EXPECT_EQ(env.sent[2].flit.type, FlitType::Body);
    EXPECT_EQ(env.sent[3].flit.type, FlitType::Tail);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(env.sent[static_cast<std::size_t>(i)].flit.seq, i);
        EXPECT_EQ(env.sent[static_cast<std::size_t>(i)].flit.msg,
                  env.sent[0].flit.msg);
    }
    // Second message has a new id.
    EXPECT_NE(env.sent[4].flit.msg, env.sent[0].flit.msg);
    EXPECT_EQ(env.sent[4].flit.type, FlitType::Head);
}

TEST_F(NicTest, SingleFlitMessagesAreHeadTail)
{
    Nic nic(0, params(0.05, 1), table, pattern, Rng{6}, pool);
    CaptureEnv env;
    for (Cycle c = 0; c < 200 && env.sent.empty(); ++c)
        nic.step(c, env);
    ASSERT_FALSE(env.sent.empty());
    EXPECT_EQ(env.sent[0].flit.type, FlitType::HeadTail);
}

TEST_F(NicTest, AtMostOneFlitPerCycle)
{
    // Drive a heavy rate; the local physical link must still carry at
    // most one flit per cycle.
    Nic nic(0, params(0.5, 4), table, pattern, Rng{7}, pool);
    CaptureEnv env;
    for (Cycle c = 0; c < 100; ++c) {
        const std::size_t before = env.sent.size();
        nic.step(c, env);
        EXPECT_LE(env.sent.size(), before + 1);
    }
}

TEST_F(NicTest, RespectsCredits)
{
    // Messages longer than the buffer (12 > 8): each active VC sends
    // exactly its 8 credits and stalls, so with 2 VCs and no credit
    // returns precisely 16 flits ever leave.
    Nic nic(0, params(1.0, 12), table, pattern, Rng{8}, pool);
    CaptureEnv env;
    for (Cycle c = 0; c < 400; ++c)
        nic.step(c, env);
    EXPECT_EQ(env.sent.size(), 16u);
    EXPECT_GT(nic.backlog(), 0u);
    // Returning credits unblocks exactly one more flit per credit.
    nic.acceptCredit(0);
    nic.acceptCredit(0);
    for (Cycle c = 400; c < 500; ++c)
        nic.step(c, env);
    EXPECT_EQ(env.sent.size(), 18u);
}

TEST_F(NicTest, ConservativeVcReallocation)
{
    // A VC is reusable only after all its credits return (the
    // downstream buffer fully drained).
    Nic::Params p = params(1.0, 2);
    p.numVcs = 1;
    p.routerBufDepth = 2;
    Nic nic(0, p, table, pattern, Rng{9}, pool);
    CaptureEnv env;
    for (Cycle c = 0; c < 50; ++c)
        nic.step(c, env);
    EXPECT_EQ(env.sent.size(), 2u); // one full message
    // One credit back: message done but buffer not drained -> no new
    // allocation.
    nic.acceptCredit(0);
    for (Cycle c = 50; c < 60; ++c)
        nic.step(c, env);
    EXPECT_EQ(env.sent.size(), 2u);
    // Second credit: VC reusable, next message flows.
    nic.acceptCredit(0);
    for (Cycle c = 60; c < 70; ++c)
        nic.step(c, env);
    EXPECT_EQ(env.sent.size(), 4u);
}

TEST_F(NicTest, LookaheadHeaderCarriesFirstHopRoute)
{
    Nic nic(0, params(0.05, 4, /*lookahead=*/true), table, pattern,
            Rng{10}, pool);
    CaptureEnv env;
    for (Cycle c = 0; c < 200 && env.sent.size() < 4; ++c)
        nic.step(c, env);
    ASSERT_GE(env.sent.size(), 4u);
    const Flit& head = env.sent[0].flit;
    const MessageDescriptor& desc = pool[head.msg];
    ASSERT_TRUE(desc.laValid);
    EXPECT_EQ(desc.laRoute, table.lookup(0, desc.dest));
    // Body flits reach the descriptor through the same handle instead
    // of replicating the look-ahead payload.
    EXPECT_EQ(env.sent[1].flit.msg, head.msg);
}

TEST_F(NicTest, InjectedAtStampsHeaderLaunch)
{
    Nic nic(0, params(0.05, 4), table, pattern, Rng{11}, pool);
    CaptureEnv env;
    for (Cycle c = 0; c < 300 && env.sent.size() < 4; ++c)
        nic.step(c, env);
    ASSERT_GE(env.sent.size(), 4u);
    const Flit& head = env.sent[0].flit;
    const MessageDescriptor& desc = pool[head.msg];
    EXPECT_GE(desc.injectedAt, desc.createdAt);
    // All flits of the message share the descriptor (and therefore the
    // header's injection stamp).
    EXPECT_EQ(env.sent[3].flit.msg, head.msg);
}

TEST_F(NicTest, MeasuringFlagTagsMessages)
{
    Nic nic(0, params(0.1, 2), table, pattern, Rng{12}, pool);
    CaptureEnv env;
    for (Cycle c = 0; c < 100; ++c)
        nic.step(c, env);
    EXPECT_EQ(nic.createdMeasured(), 0u);
    nic.setMeasuring(true);
    for (Cycle c = 100; c < 200; ++c)
        nic.step(c, env);
    EXPECT_GT(nic.createdMeasured(), 0u);
    EXPECT_GT(nic.createdTotal(), nic.createdMeasured());
}

TEST_F(NicTest, InjectionDisableStopsCreation)
{
    Nic nic(0, params(0.2, 2), table, pattern, Rng{13}, pool);
    CaptureEnv env;
    nic.setInjectionEnabled(false);
    for (Cycle c = 0; c < 200; ++c)
        nic.step(c, env);
    EXPECT_EQ(nic.createdTotal(), 0u);
    EXPECT_TRUE(env.sent.empty());
    nic.setInjectionEnabled(true);
    for (Cycle c = 200; c < 400; ++c)
        nic.step(c, env);
    EXPECT_GT(nic.createdTotal(), 0u);
}

TEST_F(NicTest, EjectionReportsTailsOnly)
{
    Nic nic(5, params(0.0), table, pattern, Rng{14}, pool);
    CountingSink sink;
    const MsgRef ref = pool.acquire();
    pool[ref].dest = 5;
    pool[ref].msgLen = 2;
    Flit f;
    f.msg = ref;
    f.type = FlitType::Head;
    nic.acceptFlit(f, 100, sink);
    EXPECT_EQ(sink.delivered, 0);
    f.type = FlitType::Tail;
    f.seq = 1;
    nic.acceptFlit(f, 101, sink);
    EXPECT_EQ(sink.delivered, 1);
    EXPECT_EQ(sink.last, ref);
}

TEST_F(NicTest, WrongDestinationEjectionAborts)
{
    Nic nic(5, params(0.0), table, pattern, Rng{15}, pool);
    CountingSink sink;
    const MsgRef ref = pool.acquire();
    pool[ref].dest = 6; // misrouted
    Flit f;
    f.msg = ref;
    f.type = FlitType::HeadTail;
    EXPECT_DEATH(nic.acceptFlit(f, 1, sink), "wrong node");
}

} // namespace
} // namespace lapses
