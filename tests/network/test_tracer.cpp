/**
 * @file
 * Unit tests for the flit tracer plus trace-derived timing properties:
 * per-hop spacing must equal the pipeline depth + link delay.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/simulation.hpp"
#include "network/tracer.hpp"

namespace lapses
{
namespace
{

TEST(Tracer, RecordsAndDropsOldest)
{
    FlitTracer tracer(3);
    for (Cycle c = 0; c < 5; ++c)
        tracer.record({c, TraceEvent::Kind::Inject, 0, 0, 1,
                       static_cast<std::uint16_t>(c),
                       FlitType::Body});
    EXPECT_EQ(tracer.size(), 3u);
    EXPECT_EQ(tracer.recorded(), 5u);
    const auto evs = tracer.events();
    ASSERT_EQ(evs.size(), 3u);
    EXPECT_EQ(evs.front().cycle, 2u); // oldest two dropped
    EXPECT_EQ(evs.back().cycle, 4u);
}

TEST(Tracer, FiltersByMessage)
{
    FlitTracer tracer(16);
    tracer.record({1, TraceEvent::Kind::Inject, 0, 0, 7, 0,
                   FlitType::Head});
    tracer.record({2, TraceEvent::Kind::Inject, 0, 0, 8, 0,
                   FlitType::Head});
    tracer.record({3, TraceEvent::Kind::Eject, 1, 0, 7, 0,
                   FlitType::Head});
    EXPECT_EQ(tracer.eventsFor(7).size(), 2u);
    EXPECT_EQ(tracer.eventsFor(8).size(), 1u);
    EXPECT_TRUE(tracer.eventsFor(99).empty());
}

TEST(Tracer, ClearResets)
{
    FlitTracer tracer(4);
    tracer.record({1, TraceEvent::Kind::Inject, 0, 0, 1, 0,
                   FlitType::Head});
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, DumpRendersEvents)
{
    FlitTracer tracer(4);
    tracer.record({5, TraceEvent::Kind::HopArrive, 3, 2, 42, 1,
                   FlitType::Body});
    std::ostringstream os;
    tracer.dump(os);
    EXPECT_NE(os.str().find("5 hop node 3 port -X msg 42 seq 1"),
              std::string::npos);
}

TEST(Tracer, KindNames)
{
    EXPECT_STREQ(traceKindName(TraceEvent::Kind::Inject), "inject");
    EXPECT_STREQ(traceKindName(TraceEvent::Kind::HopArrive), "hop");
    EXPECT_STREQ(traceKindName(TraceEvent::Kind::Eject), "eject");
}

/** Header trace of every message in a near-contention-free run. */
std::map<MessageId, std::vector<TraceEvent>>
headerTraces(RouterModel model, Cycle cycles)
{
    SimConfig cfg;
    cfg.radices = {4, 4};
    cfg.model = model;
    cfg.msgLen = 3;
    cfg.normalizedLoad = 0.02;
    Simulation sim(cfg);
    FlitTracer tracer(1 << 18);
    sim.network().setTracer(&tracer);
    sim.stepCycles(cycles);

    std::map<MessageId, std::vector<TraceEvent>> traces;
    for (const TraceEvent& ev : tracer.events()) {
        if (ev.seq == 0)
            traces[ev.msg].push_back(ev);
    }
    return traces;
}

TEST(TracerTiming, LaProudHeadersHopEveryFiveCycles)
{
    const auto traces = headerTraces(RouterModel::LaProud, 4000);
    int checked = 0;
    for (const auto& [msg, evs] : traces) {
        if (evs.empty() || evs.back().kind != TraceEvent::Kind::Eject)
            continue; // incomplete trace
        EXPECT_EQ(evs.front().kind, TraceEvent::Kind::Inject);
        for (std::size_t i = 1; i < evs.size(); ++i) {
            const Cycle gap = evs[i].cycle - evs[i - 1].cycle;
            // 4 router stages + 1 link; contention can only stretch it.
            EXPECT_GE(gap, 5u);
            ++checked;
        }
    }
    EXPECT_GT(checked, 50);
}

TEST(TracerTiming, ProudHeadersHopEverySixCycles)
{
    const auto traces = headerTraces(RouterModel::Proud, 4000);
    int exact = 0;
    int total = 0;
    for (const auto& [msg, evs] : traces) {
        if (evs.empty() || evs.back().kind != TraceEvent::Kind::Eject)
            continue;
        for (std::size_t i = 1; i < evs.size(); ++i) {
            const Cycle gap = evs[i].cycle - evs[i - 1].cycle;
            EXPECT_GE(gap, 6u);
            exact += gap == 6u ? 1 : 0;
            ++total;
        }
    }
    ASSERT_GT(total, 50);
    // At near-zero load almost every hop is contention-free.
    EXPECT_GT(static_cast<double>(exact) / total, 0.95);
}

TEST(TracerTiming, HopChainMatchesManhattanPath)
{
    const auto traces = headerTraces(RouterModel::LaProud, 4000);
    const Topology topo = makeSquareMesh(4);
    int checked = 0;
    for (const auto& [msg, evs] : traces) {
        if (evs.size() < 3 ||
            evs.back().kind != TraceEvent::Kind::Eject) {
            continue;
        }
        // Chain: inject at the source router, one hop-arrival per
        // further router, eject at the destination NIC — so
        // hop-arrival count equals the Manhattan distance.
        const NodeId src = evs.front().node;
        const NodeId dest = evs.back().node;
        const auto hop_arrivals = evs.size() - 2;
        EXPECT_EQ(static_cast<int>(hop_arrivals),
                  topo.distance(src, dest))
            << "msg " << msg;
        ++checked;
    }
    EXPECT_GT(checked, 20);
}

} // namespace
} // namespace lapses
