/**
 * @file
 * Tests for the telemetry subsystem's determinism contract (DESIGN.md
 * "Telemetry determinism contract"): enabling windowed metrics, span
 * export or any window size must leave every statistic byte-identical,
 * under both kernels, while the sampled windows themselves land at
 * exact boundaries even across idle fast-forward.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/simulation.hpp"
#include "network/tracer.hpp"
#include "stats/report.hpp"
#include "telemetry/telemetry.hpp"

namespace lapses
{
namespace
{

/** The golden-stats scenario: small, fast, unsaturated, fixed seed. */
SimConfig
telemetryBase()
{
    SimConfig cfg;
    cfg.radices = {4, 4};
    cfg.msgLen = 4;
    cfg.normalizedLoad = 0.2;
    cfg.warmupMessages = 50;
    cfg.measureMessages = 400;
    cfg.seed = 20260727;
    return cfg;
}

/** Run one point, optionally with a telemetry buffer attached;
 *  returns (stats JSON, telemetry JSONL). */
std::pair<std::string, std::string>
runWithTelemetry(SimConfig cfg, bool attach_buffer)
{
    Simulation sim(cfg);
    std::unique_ptr<TelemetryBuffer> buffer;
    if (attach_buffer) {
        buffer = std::make_unique<TelemetryBuffer>(
            sim.topology().numNodes(), sim.topology().numPorts());
        sim.network().attachTelemetryBuffer(buffer.get());
    }
    const SimStats stats = sim.run();
    std::ostringstream telem;
    if (buffer != nullptr)
        buffer->writeJsonl(telem);
    return {statsToJson(stats), telem.str()};
}

TEST(TelemetryDeterminism, StatsByteIdenticalAcrossWindowSizes)
{
    const std::string off =
        runWithTelemetry(telemetryBase(), false).first;
    for (Cycle window : {Cycle{1}, Cycle{7}, Cycle{64}, Cycle{1000}}) {
        SimConfig cfg = telemetryBase();
        cfg.telemetryWindow = window;
        // Counters + wake source alone, then with the buffer attached:
        // neither may move a single stats byte.
        EXPECT_EQ(runWithTelemetry(cfg, false).first, off)
            << "window " << window << " (no buffer)";
        EXPECT_EQ(runWithTelemetry(cfg, true).first, off)
            << "window " << window << " (buffer attached)";
    }
}

TEST(TelemetryDeterminism, SpanExportLeavesStatsIdentical)
{
    const std::string off =
        runWithTelemetry(telemetryBase(), false).first;
    SimConfig cfg = telemetryBase();
    Simulation sim(cfg);
    FlitTracer tracer(1 << 14);
    std::ostringstream spans;
    tracer.enableSpanExport(spans, 1, 5);
    sim.network().setTracer(&tracer);
    EXPECT_EQ(statsToJson(sim.run()), off);
    EXPECT_GT(tracer.spansExported(), 0u);
}

TEST(TelemetryDeterminism, CrossKernelLockstepWithTelemetryOn)
{
    SimConfig base = telemetryBase();
    base.telemetryWindow = 7;

    SimConfig scan_cfg = base;
    scan_cfg.kernel = KernelKind::Scan;
    SimConfig active_cfg = base;
    active_cfg.kernel = KernelKind::Active;

    Simulation scan(scan_cfg);
    Simulation active(active_cfg);
    TelemetryBuffer scan_buf(scan.topology().numNodes(),
                             scan.topology().numPorts());
    TelemetryBuffer active_buf(active.topology().numNodes(),
                               active.topology().numPorts());
    scan.network().attachTelemetryBuffer(&scan_buf);
    active.network().attachTelemetryBuffer(&active_buf);

    const std::string scan_stats = statsToJson(scan.run());
    const std::string active_stats = statsToJson(active.run());
    EXPECT_EQ(scan_stats, active_stats);
    EXPECT_EQ(scan.network().now(), active.network().now());

    // The telemetry stream itself must be byte-identical too: the
    // active kernel's skipped idle steps contribute exactly the zeros
    // the scan kernel adds explicitly.
    ASSERT_EQ(scan_buf.windows(), active_buf.windows());
    ASSERT_GT(scan_buf.windows(), 0u);
    std::ostringstream scan_rows;
    std::ostringstream active_rows;
    scan_buf.writeJsonl(scan_rows);
    active_buf.writeJsonl(active_rows);
    EXPECT_EQ(scan_rows.str(), active_rows.str());
}

TEST(TelemetryDeterminism, WindowBoundariesExactUnderFastForward)
{
    // Near-idle network on the active kernel: long stretches are
    // fast-forwarded, yet every window boundary must still be hit
    // exactly — the boundary is a wake source like fault events.
    SimConfig cfg = telemetryBase();
    cfg.normalizedLoad = 0.005;
    cfg.telemetryWindow = 33;
    cfg.kernel = KernelKind::Active;
    Simulation sim(cfg);
    TelemetryBuffer buffer(sim.topology().numNodes(),
                           sim.topology().numPorts());
    sim.network().attachTelemetryBuffer(&buffer);
    sim.stepCycles(1000);

    // Boundaries 33, 66, ..., 990: exactly 30 complete windows, one
    // row per node each.
    EXPECT_EQ(buffer.windows(), 30u);
    EXPECT_EQ(buffer.rows(),
              30u * static_cast<std::size_t>(
                        sim.topology().numNodes()));
    EXPECT_GT(sim.network().kernelCounters().fastForwardedCycles, 0u)
        << "scenario too busy to exercise fast-forward";
}

TEST(Telemetry, AttachWithoutWindowThrows)
{
    Simulation sim(telemetryBase()); // telemetryWindow = 0
    TelemetryBuffer buffer(sim.topology().numNodes(),
                           sim.topology().numPorts());
    EXPECT_THROW(sim.network().attachTelemetryBuffer(&buffer),
                 ConfigError);
}

TEST(Telemetry, BufferEmitsPerWindowDeltas)
{
    TelemetryBuffer buffer(2, 3);
    RouterTelemetry cum(3);

    cum.flitsOut = {5, 0, 2};
    cum.vcOccupancyTime = {10, 0, 0};
    cum.arbStalls = 4;
    cum.creditStarvedCycles = 1;
    buffer.beginWindow(0, 100);
    buffer.sample(0, cum, 7);

    cum.flitsOut = {9, 1, 2};
    cum.vcOccupancyTime = {25, 0, 3};
    cum.arbStalls = 4;
    cum.creditStarvedCycles = 3;
    buffer.beginWindow(100, 200);
    buffer.sample(0, cum, 0);

    std::ostringstream os;
    buffer.writeJsonl(os);
    EXPECT_EQ(os.str(),
              "{\"window_start\":0,\"window_end\":100,\"node\":0,"
              "\"flits_out\":[5,0,2],\"vc_occupancy_time\":[10,0,0],"
              "\"arb_stalls\":4,\"credit_starved\":1,"
              "\"nic_backlog\":7}\n"
              "{\"window_start\":100,\"window_end\":200,\"node\":0,"
              "\"flits_out\":[4,1,0],\"vc_occupancy_time\":[15,0,3],"
              "\"arb_stalls\":0,\"credit_starved\":2,"
              "\"nic_backlog\":0}\n");

    EXPECT_EQ(buffer.csvHeader(),
              "window_start,window_end,node,flits_out_p0,flits_out_p1,"
              "flits_out_p2,vc_occupancy_time_p0,vc_occupancy_time_p1,"
              "vc_occupancy_time_p2,arb_stalls,credit_starved,"
              "nic_backlog");
    std::ostringstream csv;
    buffer.writeCsv(csv);
    EXPECT_EQ(csv.str(),
              buffer.csvHeader() +
                  "\n0,100,0,5,0,2,10,0,0,4,1,7\n"
                  "100,200,0,4,1,0,15,0,3,0,2,0\n");
}

TEST(SpanExport, HandTracedTwoNodePath)
{
    // One 2-flit message, one hop, contention-free LA-PROUD timing:
    // head injects at 10, arrives at 15, tail ejects at 21. The
    // transfer time is (1 hop arrival + 1) * 5 + tail seq 1 = 11,
    // exactly the observed network time, so queueing is 0.
    FlitTracer tracer(16);
    std::ostringstream os;
    tracer.enableSpanExport(os, 1, 5);
    tracer.record({10, TraceEvent::Kind::Inject, 0, kLocalPort, 0, 0,
                   FlitType::Head});
    tracer.record({15, TraceEvent::Kind::HopArrive, 1, 3, 0, 0,
                   FlitType::Head});
    tracer.record({20, TraceEvent::Kind::Eject, 1, kInvalidPort, 0, 0,
                   FlitType::Head});
    tracer.record({21, TraceEvent::Kind::Eject, 1, kInvalidPort, 0, 1,
                   FlitType::Tail});
    EXPECT_EQ(tracer.spansExported(), 1u);
    EXPECT_EQ(os.str(),
              "{\"msg\":0,\"src\":0,\"dst\":1,\"flits\":2,"
              "\"inject_cycle\":10,\"eject_cycle\":21,"
              "\"hops\":[{\"node\":1,\"port\":3,\"cycle\":15}],"
              "\"network_cycles\":11,\"transfer_cycles\":11,"
              "\"queueing_cycles\":0}\n");
}

TEST(SpanExport, SamplingFilterAndFragments)
{
    FlitTracer tracer(16);
    std::ostringstream os;
    tracer.enableSpanExport(os, 2, 5);
    // msg 1 is filtered out by id % 2 != 0.
    tracer.record({0, TraceEvent::Kind::Inject, 0, kLocalPort, 1, 0,
                   FlitType::Head});
    tracer.record({11, TraceEvent::Kind::Eject, 1, kInvalidPort, 1, 0,
                   FlitType::HeadTail});
    // msg 2's tail without a seen injection: a fragment, skipped.
    tracer.record({20, TraceEvent::Kind::Eject, 1, kInvalidPort, 2, 1,
                   FlitType::Tail});
    EXPECT_EQ(tracer.spansExported(), 0u);
    EXPECT_TRUE(os.str().empty());
    // msg 4 passes the filter (single-flit message: HeadTail closes
    // the span it opened).
    tracer.record({30, TraceEvent::Kind::Inject, 0, kLocalPort, 4, 0,
                   FlitType::HeadTail});
    tracer.record({41, TraceEvent::Kind::Eject, 2, kInvalidPort, 4, 0,
                   FlitType::HeadTail});
    EXPECT_EQ(tracer.spansExported(), 1u);
    EXPECT_NE(os.str().find("\"msg\":4"), std::string::npos);
}

TEST(SpanExport, SimulatedSpansMatchManhattanPaths)
{
    SimConfig cfg;
    cfg.radices = {4, 4};
    cfg.msgLen = 3;
    cfg.normalizedLoad = 0.02;
    Simulation sim(cfg);
    FlitTracer tracer(1 << 18);
    std::ostringstream os;
    tracer.enableSpanExport(os, 1,
                            static_cast<Cycle>(
                                contentionFreeHopCycles(cfg.model)));
    sim.network().setTracer(&tracer);
    sim.stepCycles(4000);
    ASSERT_GT(tracer.spansExported(), 20u);

    const Topology topo = makeSquareMesh(4);
    std::istringstream lines(os.str());
    std::string line;
    std::size_t checked = 0;
    while (std::getline(lines, line)) {
        unsigned long long msg = 0;
        int src = 0;
        int dst = 0;
        int flits = 0;
        ASSERT_EQ(std::sscanf(line.c_str(),
                              "{\"msg\":%llu,\"src\":%d,\"dst\":%d,"
                              "\"flits\":%d",
                              &msg, &src, &dst, &flits),
                  4)
            << line;
        EXPECT_EQ(flits, cfg.msgLen) << line;
        // One hop-arrival record per router on the path.
        std::size_t hops = 0;
        for (std::size_t pos = line.find("{\"node\":");
             pos != std::string::npos;
             pos = line.find("{\"node\":", pos + 1))
            ++hops;
        EXPECT_EQ(static_cast<int>(hops),
                  topo.distance(static_cast<NodeId>(src),
                                static_cast<NodeId>(dst)))
            << line;
        // Transfer never exceeds the observed network time: the split
        // is contention-free cost + nonnegative queueing.
        EXPECT_EQ(line.find("\"queueing_cycles\":-"),
                  std::string::npos)
            << line;
        ++checked;
    }
    EXPECT_EQ(checked, tracer.spansExported());
}

} // namespace
} // namespace lapses
