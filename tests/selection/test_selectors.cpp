/**
 * @file
 * Unit tests for the path-selection heuristics (Section 4).
 */

#include <gtest/gtest.h>

#include <vector>

#include "selection/selector_factory.hpp"

namespace lapses
{
namespace
{

/** Two-candidate helper: X port (1) vs Y port (3) with given state. */
std::vector<PortStatus>
xy(PortStatus x, PortStatus y)
{
    x.port = 1;
    y.port = 3;
    if (x.freeVcs == 0)
        x.freeVcs = 1;
    if (y.freeVcs == 0)
        y.freeVcs = 1;
    return {x, y};
}

TEST(Selectors, StaticXyPrefersFirstCandidate)
{
    StaticXySelector sel;
    PortStatus x;
    PortStatus y;
    y.totalCredits = 100; // ignored by the static policy
    const auto c = xy(x, y);
    EXPECT_EQ(sel.select(c), 1);
}

TEST(Selectors, FirstFreePicksFirstAvailable)
{
    FirstFreeSelector sel;
    const auto c = xy({}, {});
    EXPECT_EQ(sel.select(c), 1);
}

TEST(Selectors, MinMuxPicksLeastMultiplexed)
{
    MinMuxSelector sel;
    PortStatus x;
    x.activeVcs = 3;
    PortStatus y;
    y.activeVcs = 1;
    EXPECT_EQ(sel.select(xy(x, y)), 3);
}

TEST(Selectors, MinMuxTieFallsBackToStatic)
{
    MinMuxSelector sel;
    PortStatus x;
    x.activeVcs = 2;
    PortStatus y;
    y.activeVcs = 2;
    EXPECT_EQ(sel.select(xy(x, y)), 1);
}

TEST(Selectors, LfuPicksLowestUseCount)
{
    LfuSelector sel;
    PortStatus x;
    x.useCount = 500;
    PortStatus y;
    y.useCount = 10;
    EXPECT_EQ(sel.select(xy(x, y)), 3);
}

TEST(Selectors, LruPicksOldestUse)
{
    LruSelector sel;
    PortStatus x;
    x.lastUseCycle = 900;
    PortStatus y;
    y.lastUseCycle = 100;
    EXPECT_EQ(sel.select(xy(x, y)), 3);
}

TEST(Selectors, LruNeverUsedPortIsOldest)
{
    LruSelector sel;
    PortStatus x;
    x.lastUseCycle = 5;
    PortStatus y;
    y.lastUseCycle = 0; // never used
    EXPECT_EQ(sel.select(xy(x, y)), 3);
}

TEST(Selectors, MaxCreditPicksMostCredits)
{
    MaxCreditSelector sel;
    PortStatus x;
    x.totalCredits = 12;
    PortStatus y;
    y.totalCredits = 70;
    EXPECT_EQ(sel.select(xy(x, y)), 3);
}

TEST(Selectors, MaxCreditTieFallsBackToStatic)
{
    MaxCreditSelector sel;
    PortStatus x;
    x.totalCredits = 40;
    PortStatus y;
    y.totalCredits = 40;
    EXPECT_EQ(sel.select(xy(x, y)), 1);
}

TEST(Selectors, RandomIsBoundedAndCoversBoth)
{
    RandomSelector sel(Rng{99});
    bool saw_x = false;
    bool saw_y = false;
    const auto c = xy({}, {});
    for (int i = 0; i < 200; ++i) {
        const PortId p = sel.select(c);
        ASSERT_TRUE(p == 1 || p == 3);
        saw_x = saw_x || p == 1;
        saw_y = saw_y || p == 3;
    }
    EXPECT_TRUE(saw_x);
    EXPECT_TRUE(saw_y);
}

TEST(Selectors, SingleCandidateAlwaysWins)
{
    std::vector<PortStatus> one(1);
    one[0].port = 4;
    one[0].freeVcs = 1;
    for (SelectorKind kind :
         {SelectorKind::StaticXY, SelectorKind::FirstFree,
          SelectorKind::Random, SelectorKind::MinMux, SelectorKind::Lfu,
          SelectorKind::Lru, SelectorKind::MaxCredit}) {
        const PathSelectorPtr sel = makePathSelector(kind, Rng{1});
        EXPECT_EQ(sel->select(one), 4) << selectorKindName(kind);
    }
}

TEST(Selectors, DynamicPoliciesDisagreeWhenStateConflicts)
{
    // Craft state where each dynamic policy picks a different port:
    // X: low credits, low mux, never used recently, high use count.
    PortStatus x;
    x.totalCredits = 5;
    x.activeVcs = 0;
    x.useCount = 1000;
    x.lastUseCycle = 10;
    PortStatus y;
    y.totalCredits = 50;
    y.activeVcs = 3;
    y.useCount = 2;
    y.lastUseCycle = 500;
    const auto c = xy(x, y);
    EXPECT_EQ(MinMuxSelector{}.select(c), 1);    // fewer active VCs
    EXPECT_EQ(LfuSelector{}.select(c), 3);       // fewer uses
    EXPECT_EQ(LruSelector{}.select(c), 1);       // older last use
    EXPECT_EQ(MaxCreditSelector{}.select(c), 3); // more credits
}

TEST(SelectorFactory, NamesRoundTrip)
{
    for (SelectorKind kind :
         {SelectorKind::StaticXY, SelectorKind::FirstFree,
          SelectorKind::Random, SelectorKind::MinMux, SelectorKind::Lfu,
          SelectorKind::Lru, SelectorKind::MaxCredit}) {
        const PathSelectorPtr sel = makePathSelector(kind, Rng{1});
        EXPECT_EQ(sel->name(), selectorKindName(kind));
    }
}

} // namespace
} // namespace lapses
