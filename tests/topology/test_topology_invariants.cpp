/**
 * @file
 * Structural invariants every topology generator must satisfy
 * (DESIGN.md "Port-graph topology contract"): link symmetry, port
 * consistency, full connectivity, distance() against a BFS oracle,
 * productive ports strictly closing the distance, a well-formed
 * endpoint set, and pinned bisection counts. The up*-down* spanning
 * tree gets its own invariants (order/interval consistency), and the
 * file format round-trips dump -> load -> identical dump.
 */

#include <gtest/gtest.h>

#include <queue>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "topology/dragonfly.hpp"
#include "topology/fattree.hpp"
#include "topology/mesh.hpp"
#include "topology/topology_file.hpp"

namespace lapses
{
namespace
{

/** Text form of the irregular test fabric: a 6-ring with two spurs
 *  and a chord, plus a restricted endpoint set. */
const char* kIrregularText = "nodes 10\n"
                             "ports 5\n"
                             "link 0:1 1:2\n"
                             "link 1:1 2:2\n"
                             "link 2:1 3:2\n"
                             "link 3:1 4:2\n"
                             "link 4:1 5:2\n"
                             "link 5:1 0:2\n"
                             "link 0:3 6:1\n"
                             "link 6:2 7:1\n"
                             "link 3:3 8:1\n"
                             "link 8:2 9:1\n"
                             "link 1:3 4:3\n"
                             "endpoints 0 1 2 3 4 5 7 9\n";

Topology
irregular()
{
    std::istringstream is(kIrregularText);
    return loadTopology(is, "irregular");
}

/** The generator panel the invariants run over. */
std::vector<std::pair<std::string, Topology>>
panel()
{
    std::vector<std::pair<std::string, Topology>> topos;
    topos.emplace_back("mesh4x4", makeSquareMesh(4));
    topos.emplace_back("torus4x4", makeSquareMesh(4, true));
    topos.emplace_back("mesh3x5", makeMeshTopology({3, 5}, false));
    topos.emplace_back("cube3", makeCubeMesh(3));
    topos.emplace_back("fattree2x2", makeFatTreeTopology(2, 2));
    topos.emplace_back("fattree4x2", makeFatTreeTopology(4, 2));
    topos.emplace_back("fattree2x3", makeFatTreeTopology(2, 3));
    topos.emplace_back("dragonfly2x1x3", makeDragonflyTopology(2, 1, 3));
    topos.emplace_back("dragonfly6x2x12",
                       makeDragonflyTopology(6, 2, 12));
    topos.emplace_back("irregular-file", irregular());
    return topos;
}

/** Plain BFS oracle, independent of Topology::distancesFrom. */
std::vector<int>
bfsOracle(const Topology& topo, NodeId src)
{
    std::vector<int> dist(static_cast<std::size_t>(topo.numNodes()),
                          -1);
    std::queue<NodeId> q;
    dist[static_cast<std::size_t>(src)] = 0;
    q.push(src);
    while (!q.empty()) {
        const NodeId u = q.front();
        q.pop();
        for (PortId p = 1; p < topo.numPorts(); ++p) {
            const NodeId v = topo.neighbor(u, p);
            if (v == kInvalidNode ||
                dist[static_cast<std::size_t>(v)] >= 0)
                continue;
            dist[static_cast<std::size_t>(v)] =
                dist[static_cast<std::size_t>(u)] + 1;
            q.push(v);
        }
    }
    return dist;
}

TEST(TopologyInvariants, LinkSymmetry)
{
    for (const auto& [name, topo] : panel()) {
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            for (PortId p = 1; p < topo.numPorts(); ++p) {
                const NodeId peer = topo.neighbor(n, p);
                if (peer == kInvalidNode) {
                    EXPECT_EQ(topo.peerPort(n, p), kInvalidPort)
                        << name;
                    continue;
                }
                const PortId back = topo.peerPort(n, p);
                ASSERT_NE(back, kInvalidPort) << name;
                EXPECT_EQ(topo.neighbor(peer, back), n)
                    << name << " node " << n << " port " << int(p);
                EXPECT_EQ(topo.peerPort(peer, back), p)
                    << name << " node " << n << " port " << int(p);
                EXPECT_NE(peer, n) << name << ": self-link";
            }
        }
    }
}

TEST(TopologyInvariants, LocalPortIsSelf)
{
    for (const auto& [name, topo] : panel()) {
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            EXPECT_EQ(topo.neighbor(n, kLocalPort), n) << name;
            EXPECT_EQ(topo.peerPort(n, kLocalPort), kLocalPort)
                << name;
        }
    }
}

TEST(TopologyInvariants, FullyConnected)
{
    for (const auto& [name, topo] : panel()) {
        const std::vector<int> dist = bfsOracle(topo, 0);
        for (NodeId n = 0; n < topo.numNodes(); ++n)
            EXPECT_GE(dist[static_cast<std::size_t>(n)], 0)
                << name << " node " << n << " unreachable";
    }
}

TEST(TopologyInvariants, DistanceMatchesBfsOracle)
{
    for (const auto& [name, topo] : panel()) {
        for (NodeId a = 0; a < topo.numNodes(); ++a) {
            const std::vector<int> dist = bfsOracle(topo, a);
            const std::vector<std::int32_t> field =
                topo.distancesFrom(a);
            for (NodeId b = 0; b < topo.numNodes(); ++b) {
                EXPECT_EQ(topo.distance(a, b),
                          dist[static_cast<std::size_t>(b)])
                    << name << ' ' << a << "->" << b;
                EXPECT_EQ(field[static_cast<std::size_t>(b)],
                          dist[static_cast<std::size_t>(b)])
                    << name << ' ' << a << "->" << b;
            }
        }
    }
}

TEST(TopologyInvariants, ProductivePortsStrictlyCloser)
{
    for (const auto& [name, topo] : panel()) {
        for (NodeId a = 0; a < topo.numNodes(); ++a) {
            for (NodeId b = 0; b < topo.numNodes(); ++b) {
                const std::vector<PortId> ports =
                    topo.productivePorts(a, b);
                if (a == b) {
                    EXPECT_TRUE(ports.empty()) << name;
                    continue;
                }
                ASSERT_FALSE(ports.empty())
                    << name << ' ' << a << "->" << b;
                for (PortId p : ports) {
                    const NodeId next = topo.neighbor(a, p);
                    ASSERT_NE(next, kInvalidNode) << name;
                    EXPECT_EQ(topo.distance(next, b),
                              topo.distance(a, b) - 1)
                        << name << ' ' << a << "->" << b << " via "
                        << int(p);
                }
            }
        }
    }
}

TEST(TopologyInvariants, EndpointSetConsistent)
{
    for (const auto& [name, topo] : panel()) {
        ASSERT_GE(topo.numEndpoints(), 1) << name;
        ASSERT_LE(topo.numEndpoints(), topo.numNodes()) << name;
        NodeId prev = -1;
        for (NodeId i = 0; i < topo.numEndpoints(); ++i) {
            const NodeId node = topo.endpoint(i);
            EXPECT_GT(node, prev) << name << ": not ascending";
            prev = node;
            EXPECT_TRUE(topo.contains(node)) << name;
            EXPECT_TRUE(topo.isEndpoint(node)) << name;
            EXPECT_EQ(topo.endpointIndex(node), i) << name;
        }
        // Non-endpoints report kInvalidNode.
        NodeId count = 0;
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            if (topo.isEndpoint(n))
                ++count;
            else
                EXPECT_EQ(topo.endpointIndex(n), kInvalidNode) << name;
        }
        EXPECT_EQ(count, topo.numEndpoints()) << name;
    }
}

TEST(TopologyInvariants, FatTreeHostsFirst)
{
    // k-ary n-tree: k^n hosts numbered 0..k^n-1, all endpoints.
    const Topology ft = makeFatTreeTopology(4, 3);
    EXPECT_EQ(ft.numEndpoints(), 64);
    for (NodeId i = 0; i < 64; ++i)
        EXPECT_EQ(ft.endpoint(i), i);
    EXPECT_FALSE(ft.isEndpoint(64)); // first switch
}

TEST(TopologyInvariants, PinnedBisections)
{
    // Mesh/torus: analytic channel counts across the larger-dim cut.
    EXPECT_EQ(makeSquareMesh(16).bisectionChannels(), 32);
    EXPECT_EQ(makeSquareMesh(16, true).bisectionChannels(), 64);
    // Fat tree: full bisection, hosts/2 channels each way.
    EXPECT_EQ(makeFatTreeTopology(4, 2).bisectionChannels(), 8);
    EXPECT_EQ(makeFatTreeTopology(4, 3).bisectionChannels(), 32);
    EXPECT_EQ(makeFatTreeTopology(2, 3).bisectionChannels(), 4);
    // Dragonfly: the median node cut over global + local links.
    const Topology df = makeDragonflyTopology(6, 2, 12);
    EXPECT_EQ(df.bisectionChannels(), df.medianCutChannels());
    EXPECT_GT(df.bisectionChannels(), 0);
    // Saturation normalization follows 2 * bisection / endpoints.
    EXPECT_DOUBLE_EQ(
        makeFatTreeTopology(4, 2).bisectionSaturationFlitRate(), 1.0);
}

TEST(TopologyInvariants, MeshCapabilityPresence)
{
    EXPECT_NE(makeSquareMesh(4).mesh(), nullptr);
    EXPECT_TRUE(makeSquareMesh(4, true).isTorus());
    EXPECT_EQ(makeFatTreeTopology(4, 2).mesh(), nullptr);
    EXPECT_EQ(makeDragonflyTopology(2, 1, 3).mesh(), nullptr);
    EXPECT_EQ(irregular().mesh(), nullptr);
}

TEST(TopologyInvariants, SpanningTreeWellFormed)
{
    for (const auto& [name, topo] : panel()) {
        const SpanningTree& tree = topo.spanningTree();
        const auto n = static_cast<std::size_t>(topo.numNodes());
        ASSERT_EQ(tree.parentNode.size(), n) << name;
        ASSERT_EQ(tree.order.size(), n) << name;
        EXPECT_EQ(tree.parentNode[0], kInvalidNode) << name;
        EXPECT_EQ(tree.order[0], 0) << name;
        for (NodeId v = 1; v < topo.numNodes(); ++v) {
            const auto i = static_cast<std::size_t>(v);
            const NodeId parent = tree.parentNode[i];
            ASSERT_NE(parent, kInvalidNode) << name;
            // The recorded ports really wire child <-> parent.
            EXPECT_EQ(topo.neighbor(v, tree.parentPort[i]), parent)
                << name << " node " << v;
            EXPECT_EQ(topo.neighbor(parent, tree.parentDownPort[i]), v)
                << name << " node " << v;
            // BFS discovery order orients every tree edge upward.
            EXPECT_LT(tree.order[static_cast<std::size_t>(parent)],
                      tree.order[i])
                << name << " node " << v;
            // DFS intervals nest strictly inside the parent's.
            EXPECT_TRUE(tree.inSubtree(parent, v)) << name;
            EXPECT_FALSE(tree.inSubtree(v, parent)) << name;
        }
    }
}

TEST(TopologyInvariants, ConnectRejectsBadWiring)
{
    Topology t(4, 3);
    t.connect({0, 1}, {1, 1});
    // Port already in use.
    EXPECT_THROW(t.connect({0, 1}, {2, 1}), ConfigError);
    // Self-link.
    EXPECT_THROW(t.connect({2, 1}, {2, 2}), ConfigError);
    // Local port.
    EXPECT_THROW(t.connect({2, 0}, {3, 1}), ConfigError);
    // Out of range.
    EXPECT_THROW(t.connect({2, 1}, {4, 1}), ConfigError);
    EXPECT_THROW(t.connect({2, 3}, {3, 1}), ConfigError);
}

TEST(TopologyInvariants, DisconnectedGraphRejected)
{
    Topology t(4, 3);
    t.connect({0, 1}, {1, 1});
    t.connect({2, 1}, {3, 1});
    EXPECT_THROW(t.spanningTree(), ConfigError);
}

TEST(TopologyFileRoundTrip, DumpLoadIdentical)
{
    for (const auto& [name, topo] : panel()) {
        std::ostringstream first;
        dumpTopology(topo, first);
        std::istringstream is(first.str());
        const Topology reloaded = loadTopology(is, name);

        ASSERT_EQ(reloaded.numNodes(), topo.numNodes()) << name;
        ASSERT_EQ(reloaded.numPorts(), topo.numPorts()) << name;
        EXPECT_EQ(reloaded.numEndpoints(), topo.numEndpoints())
            << name;
        EXPECT_EQ(reloaded.bisectionChannels(),
                  topo.bisectionChannels())
            << name;
        for (NodeId n = 0; n < topo.numNodes(); ++n) {
            for (PortId p = 1; p < topo.numPorts(); ++p) {
                EXPECT_EQ(reloaded.neighbor(n, p), topo.neighbor(n, p))
                    << name;
                EXPECT_EQ(reloaded.peerPort(n, p), topo.peerPort(n, p))
                    << name;
            }
        }
        // Second dump is byte-identical: the canonical form is a
        // fixed point.
        std::ostringstream second;
        dumpTopology(reloaded, second);
        EXPECT_EQ(first.str(), second.str()) << name;
    }
}

} // namespace
} // namespace lapses
