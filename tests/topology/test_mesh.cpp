/**
 * @file
 * Unit tests for the k-ary n-mesh / torus topology.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "topology/mesh.hpp"

namespace lapses
{
namespace
{

TEST(Mesh, BasicGeometry16x16)
{
    const Topology m = makeSquareMesh(16);
    EXPECT_EQ(m.numNodes(), 256);
    EXPECT_EQ(m.mesh()->dims(), 2);
    EXPECT_EQ(m.numPorts(), 5); // L, +X, -X, +Y, -Y
    EXPECT_FALSE(m.isTorus());
}

TEST(Mesh, NodeCoordRoundTrip)
{
    const Topology m = makeSquareMesh(16);
    for (NodeId n = 0; n < m.numNodes(); ++n)
        EXPECT_EQ(m.mesh()->coordsToNode(m.mesh()->nodeToCoords(n)), n);
}

TEST(Mesh, RowMajorNumbering)
{
    // Paper Fig. 8 labels: node = y*16 + x.
    const Topology m = makeSquareMesh(16);
    const Coordinates c = m.mesh()->nodeToCoords(16 * 3 + 5);
    EXPECT_EQ(c.at(0), 5);
    EXPECT_EQ(c.at(1), 3);
}

TEST(Mesh, PortNamesAndGeometry)
{
    EXPECT_EQ(MeshShape::portName(kLocalPort), "L");
    EXPECT_EQ(MeshShape::portName(MeshShape::port(0,
                                                        Direction::Plus)),
              "+X");
    EXPECT_EQ(MeshShape::portName(MeshShape::port(1,
                                                        Direction::Minus)),
              "-Y");
    EXPECT_EQ(MeshShape::portDim(3), 1);
    EXPECT_EQ(MeshShape::portDir(3), Direction::Plus);
    EXPECT_EQ(MeshShape::portDir(4), Direction::Minus);
}

TEST(Mesh, OppositePortFlipsDirection)
{
    for (PortId p = 1; p <= 4; ++p) {
        const PortId o = MeshShape::oppositePort(p);
        EXPECT_EQ(MeshShape::portDim(o), MeshShape::portDim(p));
        EXPECT_NE(MeshShape::portDir(o), MeshShape::portDir(p));
        EXPECT_EQ(MeshShape::oppositePort(o), p);
    }
}

TEST(Mesh, NeighborsInterior)
{
    const Topology m = makeSquareMesh(4);
    const NodeId center = m.mesh()->coordsToNode(Coordinates(1, 1)); // node 5
    EXPECT_EQ(m.neighbor(center, MeshShape::port(0, Direction::Plus)),
              m.mesh()->coordsToNode(Coordinates(2, 1)));
    EXPECT_EQ(m.neighbor(center, MeshShape::port(0, Direction::Minus)),
              m.mesh()->coordsToNode(Coordinates(0, 1)));
    EXPECT_EQ(m.neighbor(center, MeshShape::port(1, Direction::Plus)),
              m.mesh()->coordsToNode(Coordinates(1, 2)));
    EXPECT_EQ(m.neighbor(center, MeshShape::port(1, Direction::Minus)),
              m.mesh()->coordsToNode(Coordinates(1, 0)));
}

TEST(Mesh, EdgesHaveNoNeighbor)
{
    const Topology m = makeSquareMesh(4);
    const NodeId corner = m.mesh()->coordsToNode(Coordinates(0, 0));
    EXPECT_EQ(m.neighbor(corner, MeshShape::port(0, Direction::Minus)),
              kInvalidNode);
    EXPECT_EQ(m.neighbor(corner, MeshShape::port(1, Direction::Minus)),
              kInvalidNode);
    EXPECT_NE(m.neighbor(corner, MeshShape::port(0, Direction::Plus)),
              kInvalidNode);
}

TEST(Mesh, TorusWrapsAround)
{
    const Topology t = makeSquareMesh(4, true);
    const NodeId corner = t.mesh()->coordsToNode(Coordinates(0, 0));
    EXPECT_EQ(t.neighbor(corner, MeshShape::port(0, Direction::Minus)),
              t.mesh()->coordsToNode(Coordinates(3, 0)));
    EXPECT_EQ(t.neighbor(corner, MeshShape::port(1, Direction::Minus)),
              t.mesh()->coordsToNode(Coordinates(0, 3)));
}

TEST(Mesh, LocalPortIsSelf)
{
    const Topology m = makeSquareMesh(4);
    EXPECT_EQ(m.neighbor(7, kLocalPort), 7);
}

TEST(Mesh, NeighborRelationIsSymmetric)
{
    const Topology m = makeSquareMesh(5);
    for (NodeId n = 0; n < m.numNodes(); ++n) {
        for (PortId p = 1; p < m.numPorts(); ++p) {
            const NodeId peer = m.neighbor(n, p);
            if (peer == kInvalidNode)
                continue;
            EXPECT_EQ(m.neighbor(peer, MeshShape::oppositePort(p)), n);
        }
    }
}

TEST(Mesh, DistanceIsManhattan)
{
    const Topology m = makeSquareMesh(8);
    EXPECT_EQ(m.distance(m.mesh()->coordsToNode(Coordinates(0, 0)),
                         m.mesh()->coordsToNode(Coordinates(7, 7))),
              14);
    EXPECT_EQ(m.distance(3, 3), 0);
}

TEST(Mesh, TorusDistanceUsesWrap)
{
    const Topology t = makeSquareMesh(8, true);
    EXPECT_EQ(t.distance(t.mesh()->coordsToNode(Coordinates(0, 0)),
                         t.mesh()->coordsToNode(Coordinates(7, 0))),
              1);
}

TEST(Mesh, ProductivePortsMoveCloser)
{
    const Topology m = makeSquareMesh(8);
    Rng rng(5);
    for (int trial = 0; trial < 500; ++trial) {
        const NodeId a = static_cast<NodeId>(rng.nextBounded(64));
        const NodeId b = static_cast<NodeId>(rng.nextBounded(64));
        for (PortId p : m.productivePorts(a, b)) {
            const NodeId next = m.neighbor(a, p);
            ASSERT_NE(next, kInvalidNode);
            EXPECT_EQ(m.distance(next, b), m.distance(a, b) - 1);
        }
    }
}

TEST(Mesh, ProductivePortCountMatchesOffsets)
{
    const Topology m = makeSquareMesh(8);
    const NodeId a = m.mesh()->coordsToNode(Coordinates(2, 2));
    EXPECT_EQ(m.productivePorts(a, m.mesh()->coordsToNode(Coordinates(5, 6)))
                  .size(),
              2u);
    EXPECT_EQ(m.productivePorts(a, m.mesh()->coordsToNode(Coordinates(5, 2)))
                  .size(),
              1u);
    EXPECT_TRUE(m.productivePorts(a, a).empty());
}

TEST(Mesh, ProductivePortInDimExact)
{
    const Topology m = makeSquareMesh(8);
    const NodeId a = m.mesh()->coordsToNode(Coordinates(4, 4));
    const NodeId b = m.mesh()->coordsToNode(Coordinates(2, 6));
    EXPECT_EQ(m.mesh()->productivePortInDim(a, b, 0),
              MeshShape::port(0, Direction::Minus));
    EXPECT_EQ(m.mesh()->productivePortInDim(a, b, 1),
              MeshShape::port(1, Direction::Plus));
    EXPECT_EQ(m.mesh()->productivePortInDim(a, a, 0), kInvalidPort);
}

TEST(Mesh, BisectionChannels)
{
    // k x k mesh: 2k unidirectional channels cross the bisection.
    EXPECT_EQ(makeSquareMesh(16).bisectionChannels(), 32);
    EXPECT_EQ(makeSquareMesh(8).bisectionChannels(), 16);
    // Torus doubles it with wrap links.
    EXPECT_EQ(makeSquareMesh(16, true).bisectionChannels(), 64);
}

TEST(Mesh, BisectionSaturationRate)
{
    // 16x16: 2 * 32 / 256 = 0.25 flits/node/cycle (Section 2.2).
    EXPECT_DOUBLE_EQ(
        makeSquareMesh(16).bisectionSaturationFlitRate(), 0.25);
}

TEST(Mesh, ThreeDimensionalGeometry)
{
    const Topology m = makeCubeMesh(4);
    EXPECT_EQ(m.numNodes(), 64);
    EXPECT_EQ(m.numPorts(), 7);
    const NodeId n = m.mesh()->coordsToNode(Coordinates(1, 2, 3));
    EXPECT_EQ(m.mesh()->nodeToCoords(n).at(2), 3);
    EXPECT_EQ(m.neighbor(n, MeshShape::port(2, Direction::Minus)),
              m.mesh()->coordsToNode(Coordinates(1, 2, 2)));
}

TEST(Mesh, RectangularRadices)
{
    const Topology m = makeMeshTopology({8, 4}, false);
    EXPECT_EQ(m.numNodes(), 32);
    EXPECT_EQ(m.mesh()->radix(0), 8);
    EXPECT_EQ(m.mesh()->radix(1), 4);
    // Bisection cuts the larger dimension: slice = 4 nodes -> 8 chans.
    EXPECT_EQ(m.bisectionChannels(), 8);
}

TEST(Mesh, RejectsBadConfigs)
{
    EXPECT_THROW(makeMeshTopology({}, false), ConfigError);
    EXPECT_THROW(makeMeshTopology({1, 4}, false), ConfigError);
    EXPECT_THROW(makeMeshTopology({2, 2, 2, 2, 2}, false),
                 ConfigError);
}

} // namespace
} // namespace lapses
