/**
 * @file
 * Unit tests for the k-ary n-mesh / torus topology.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "topology/mesh.hpp"

namespace lapses
{
namespace
{

TEST(Mesh, BasicGeometry16x16)
{
    const MeshTopology m = MeshTopology::square2d(16);
    EXPECT_EQ(m.numNodes(), 256);
    EXPECT_EQ(m.dims(), 2);
    EXPECT_EQ(m.numPorts(), 5); // L, +X, -X, +Y, -Y
    EXPECT_FALSE(m.isTorus());
}

TEST(Mesh, NodeCoordRoundTrip)
{
    const MeshTopology m = MeshTopology::square2d(16);
    for (NodeId n = 0; n < m.numNodes(); ++n)
        EXPECT_EQ(m.coordsToNode(m.nodeToCoords(n)), n);
}

TEST(Mesh, RowMajorNumbering)
{
    // Paper Fig. 8 labels: node = y*16 + x.
    const MeshTopology m = MeshTopology::square2d(16);
    const Coordinates c = m.nodeToCoords(16 * 3 + 5);
    EXPECT_EQ(c.at(0), 5);
    EXPECT_EQ(c.at(1), 3);
}

TEST(Mesh, PortNamesAndGeometry)
{
    EXPECT_EQ(MeshTopology::portName(kLocalPort), "L");
    EXPECT_EQ(MeshTopology::portName(MeshTopology::port(0,
                                                        Direction::Plus)),
              "+X");
    EXPECT_EQ(MeshTopology::portName(MeshTopology::port(1,
                                                        Direction::Minus)),
              "-Y");
    EXPECT_EQ(MeshTopology::portDim(3), 1);
    EXPECT_EQ(MeshTopology::portDir(3), Direction::Plus);
    EXPECT_EQ(MeshTopology::portDir(4), Direction::Minus);
}

TEST(Mesh, OppositePortFlipsDirection)
{
    for (PortId p = 1; p <= 4; ++p) {
        const PortId o = MeshTopology::oppositePort(p);
        EXPECT_EQ(MeshTopology::portDim(o), MeshTopology::portDim(p));
        EXPECT_NE(MeshTopology::portDir(o), MeshTopology::portDir(p));
        EXPECT_EQ(MeshTopology::oppositePort(o), p);
    }
}

TEST(Mesh, NeighborsInterior)
{
    const MeshTopology m = MeshTopology::square2d(4);
    const NodeId center = m.coordsToNode(Coordinates(1, 1)); // node 5
    EXPECT_EQ(m.neighbor(center, MeshTopology::port(0, Direction::Plus)),
              m.coordsToNode(Coordinates(2, 1)));
    EXPECT_EQ(m.neighbor(center, MeshTopology::port(0, Direction::Minus)),
              m.coordsToNode(Coordinates(0, 1)));
    EXPECT_EQ(m.neighbor(center, MeshTopology::port(1, Direction::Plus)),
              m.coordsToNode(Coordinates(1, 2)));
    EXPECT_EQ(m.neighbor(center, MeshTopology::port(1, Direction::Minus)),
              m.coordsToNode(Coordinates(1, 0)));
}

TEST(Mesh, EdgesHaveNoNeighbor)
{
    const MeshTopology m = MeshTopology::square2d(4);
    const NodeId corner = m.coordsToNode(Coordinates(0, 0));
    EXPECT_EQ(m.neighbor(corner, MeshTopology::port(0, Direction::Minus)),
              kInvalidNode);
    EXPECT_EQ(m.neighbor(corner, MeshTopology::port(1, Direction::Minus)),
              kInvalidNode);
    EXPECT_NE(m.neighbor(corner, MeshTopology::port(0, Direction::Plus)),
              kInvalidNode);
}

TEST(Mesh, TorusWrapsAround)
{
    const MeshTopology t = MeshTopology::square2d(4, true);
    const NodeId corner = t.coordsToNode(Coordinates(0, 0));
    EXPECT_EQ(t.neighbor(corner, MeshTopology::port(0, Direction::Minus)),
              t.coordsToNode(Coordinates(3, 0)));
    EXPECT_EQ(t.neighbor(corner, MeshTopology::port(1, Direction::Minus)),
              t.coordsToNode(Coordinates(0, 3)));
}

TEST(Mesh, LocalPortIsSelf)
{
    const MeshTopology m = MeshTopology::square2d(4);
    EXPECT_EQ(m.neighbor(7, kLocalPort), 7);
}

TEST(Mesh, NeighborRelationIsSymmetric)
{
    const MeshTopology m = MeshTopology::square2d(5);
    for (NodeId n = 0; n < m.numNodes(); ++n) {
        for (PortId p = 1; p < m.numPorts(); ++p) {
            const NodeId peer = m.neighbor(n, p);
            if (peer == kInvalidNode)
                continue;
            EXPECT_EQ(m.neighbor(peer, MeshTopology::oppositePort(p)), n);
        }
    }
}

TEST(Mesh, DistanceIsManhattan)
{
    const MeshTopology m = MeshTopology::square2d(8);
    EXPECT_EQ(m.distance(m.coordsToNode(Coordinates(0, 0)),
                         m.coordsToNode(Coordinates(7, 7))),
              14);
    EXPECT_EQ(m.distance(3, 3), 0);
}

TEST(Mesh, TorusDistanceUsesWrap)
{
    const MeshTopology t = MeshTopology::square2d(8, true);
    EXPECT_EQ(t.distance(t.coordsToNode(Coordinates(0, 0)),
                         t.coordsToNode(Coordinates(7, 0))),
              1);
}

TEST(Mesh, ProductivePortsMoveCloser)
{
    const MeshTopology m = MeshTopology::square2d(8);
    Rng rng(5);
    for (int trial = 0; trial < 500; ++trial) {
        const NodeId a = static_cast<NodeId>(rng.nextBounded(64));
        const NodeId b = static_cast<NodeId>(rng.nextBounded(64));
        for (PortId p : m.productivePorts(a, b)) {
            const NodeId next = m.neighbor(a, p);
            ASSERT_NE(next, kInvalidNode);
            EXPECT_EQ(m.distance(next, b), m.distance(a, b) - 1);
        }
    }
}

TEST(Mesh, ProductivePortCountMatchesOffsets)
{
    const MeshTopology m = MeshTopology::square2d(8);
    const NodeId a = m.coordsToNode(Coordinates(2, 2));
    EXPECT_EQ(m.productivePorts(a, m.coordsToNode(Coordinates(5, 6)))
                  .size(),
              2u);
    EXPECT_EQ(m.productivePorts(a, m.coordsToNode(Coordinates(5, 2)))
                  .size(),
              1u);
    EXPECT_TRUE(m.productivePorts(a, a).empty());
}

TEST(Mesh, ProductivePortInDimExact)
{
    const MeshTopology m = MeshTopology::square2d(8);
    const NodeId a = m.coordsToNode(Coordinates(4, 4));
    const NodeId b = m.coordsToNode(Coordinates(2, 6));
    EXPECT_EQ(m.productivePortInDim(a, b, 0),
              MeshTopology::port(0, Direction::Minus));
    EXPECT_EQ(m.productivePortInDim(a, b, 1),
              MeshTopology::port(1, Direction::Plus));
    EXPECT_EQ(m.productivePortInDim(a, a, 0), kInvalidPort);
}

TEST(Mesh, BisectionChannels)
{
    // k x k mesh: 2k unidirectional channels cross the bisection.
    EXPECT_EQ(MeshTopology::square2d(16).bisectionChannels(), 32);
    EXPECT_EQ(MeshTopology::square2d(8).bisectionChannels(), 16);
    // Torus doubles it with wrap links.
    EXPECT_EQ(MeshTopology::square2d(16, true).bisectionChannels(), 64);
}

TEST(Mesh, BisectionSaturationRate)
{
    // 16x16: 2 * 32 / 256 = 0.25 flits/node/cycle (Section 2.2).
    EXPECT_DOUBLE_EQ(
        MeshTopology::square2d(16).bisectionSaturationFlitRate(), 0.25);
}

TEST(Mesh, ThreeDimensionalGeometry)
{
    const MeshTopology m = MeshTopology::cube3d(4);
    EXPECT_EQ(m.numNodes(), 64);
    EXPECT_EQ(m.numPorts(), 7);
    const NodeId n = m.coordsToNode(Coordinates(1, 2, 3));
    EXPECT_EQ(m.nodeToCoords(n).at(2), 3);
    EXPECT_EQ(m.neighbor(n, MeshTopology::port(2, Direction::Minus)),
              m.coordsToNode(Coordinates(1, 2, 2)));
}

TEST(Mesh, RectangularRadices)
{
    const MeshTopology m({8, 4}, false);
    EXPECT_EQ(m.numNodes(), 32);
    EXPECT_EQ(m.radix(0), 8);
    EXPECT_EQ(m.radix(1), 4);
    // Bisection cuts the larger dimension: slice = 4 nodes -> 8 chans.
    EXPECT_EQ(m.bisectionChannels(), 8);
}

TEST(Mesh, RejectsBadConfigs)
{
    EXPECT_THROW(MeshTopology({}, false), ConfigError);
    EXPECT_THROW(MeshTopology({1, 4}, false), ConfigError);
    EXPECT_THROW(MeshTopology({2, 2, 2, 2, 2}, false), ConfigError);
}

} // namespace
} // namespace lapses
