/**
 * @file
 * Unit tests for coordinates and sign vectors (Section 5.2.1 hardware).
 */

#include <gtest/gtest.h>

#include "topology/coordinates.hpp"

namespace lapses
{
namespace
{

TEST(Coordinates, ConstructorsSetDims)
{
    Coordinates c2(3, 4);
    EXPECT_EQ(c2.dims(), 2);
    EXPECT_EQ(c2.at(0), 3);
    EXPECT_EQ(c2.at(1), 4);

    Coordinates c3(1, 2, 3);
    EXPECT_EQ(c3.dims(), 3);
    EXPECT_EQ(c3.at(2), 3);
}

TEST(Coordinates, SetUpdates)
{
    Coordinates c(2);
    c.set(0, 7);
    c.set(1, -2);
    EXPECT_EQ(c.at(0), 7);
    EXPECT_EQ(c.at(1), -2);
}

TEST(Coordinates, EqualityComparesAllDims)
{
    EXPECT_EQ(Coordinates(1, 2), Coordinates(1, 2));
    EXPECT_NE(Coordinates(1, 2), Coordinates(2, 1));
    EXPECT_NE(Coordinates(1, 2), Coordinates(1, 2, 0)); // dims differ
}

TEST(Coordinates, ToStringRenders)
{
    EXPECT_EQ(Coordinates(1, 2).toString(), "(1,2)");
    EXPECT_EQ(Coordinates(0, 0, 5).toString(), "(0,0,5)");
}

TEST(Sign, SignOfMatchesDefinition)
{
    EXPECT_EQ(signOf(0, 5), Sign::Plus);
    EXPECT_EQ(signOf(5, 0), Sign::Minus);
    EXPECT_EQ(signOf(3, 3), Sign::Zero);
}

TEST(Sign, SignCharRenders)
{
    EXPECT_EQ(signChar(Sign::Plus), '+');
    EXPECT_EQ(signChar(Sign::Minus), '-');
    EXPECT_EQ(signChar(Sign::Zero), '0');
}

TEST(SignVector, ComputesPerDimension)
{
    // Paper Section 5.2.1: s_x = sign(d_x - i_x), s_y = sign(d_y - i_y).
    const SignVector sv(Coordinates(1, 1), Coordinates(0, 2));
    EXPECT_EQ(sv.at(0), Sign::Minus);
    EXPECT_EQ(sv.at(1), Sign::Plus);
    EXPECT_FALSE(sv.isZero());
}

TEST(SignVector, ZeroAtDestination)
{
    const SignVector sv(Coordinates(4, 7), Coordinates(4, 7));
    EXPECT_TRUE(sv.isZero());
}

TEST(SignVector, TableIndexRoundTrips2D)
{
    // All 9 sign combinations of a 2-D mesh (the 9-entry ES table).
    for (int idx = 0; idx < 9; ++idx) {
        const SignVector sv = SignVector::fromTableIndex(idx, 2);
        EXPECT_EQ(sv.tableIndex(), idx);
    }
}

TEST(SignVector, TableIndexRoundTrips3D)
{
    // All 27 sign combinations of a 3-D mesh (the 27-entry ES table).
    for (int idx = 0; idx < 27; ++idx) {
        const SignVector sv = SignVector::fromTableIndex(idx, 3);
        EXPECT_EQ(sv.tableIndex(), idx);
    }
}

TEST(SignVector, TableIndexIsUniquePerSign)
{
    bool seen[9] = {};
    for (int sx = -1; sx <= 1; ++sx) {
        for (int sy = -1; sy <= 1; ++sy) {
            SignVector sv;
            sv = SignVector(Coordinates(0, 0),
                            Coordinates(sx, sy));
            const int idx = sv.tableIndex();
            ASSERT_GE(idx, 0);
            ASSERT_LT(idx, 9);
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
        }
    }
}

TEST(SignVector, CenterIndexIsMiddle)
{
    // (0,0) maps to digit pattern (1,1): index 1 + 3 = 4 of 0..8.
    const SignVector sv(Coordinates(2, 2), Coordinates(2, 2));
    EXPECT_EQ(sv.tableIndex(), 4);
}

TEST(SignVector, ToStringRenders)
{
    const SignVector sv(Coordinates(1, 1), Coordinates(0, 2));
    EXPECT_EQ(sv.toString(), "(-,+)");
}

} // namespace
} // namespace lapses
