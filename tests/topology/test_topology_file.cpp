/**
 * @file
 * Tests for the topology file loader and the --topology spec parser:
 * every malformed input names the file and line (or the offending
 * flag), and the canonical dump round-trips.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "topology/spec.hpp"
#include "topology/topology_file.hpp"

namespace lapses
{
namespace
{

Topology
load(const std::string& text)
{
    std::istringstream is(text);
    return loadTopology(is, "fab.topo");
}

/** Expect loadTopology(text) to throw with 'expected' in the message. */
void
expectLoadError(const std::string& text, const std::string& expected)
{
    try {
        load(text);
        FAIL() << "no ConfigError for: " << text;
    } catch (const ConfigError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(expected), std::string::npos)
            << "message '" << msg << "' lacks '" << expected << "'";
        // The file label must appear exactly once — no re-wrapped
        // "path:line: path:line:" prefixes.
        EXPECT_EQ(msg.find("fab.topo"), msg.rfind("fab.topo")) << msg;
    }
}

TEST(TopologyFile, LoadsMinimalGraph)
{
    const Topology t = load("nodes 2\n"
                            "ports 2\n"
                            "link 0:1 1:1\n");
    EXPECT_EQ(t.numNodes(), 2);
    EXPECT_EQ(t.numPorts(), 2);
    EXPECT_EQ(t.neighbor(0, 1), 1);
    EXPECT_EQ(t.peerPort(0, 1), 1);
    EXPECT_EQ(t.numEndpoints(), 2);
    EXPECT_EQ(t.bisectionChannels(), 2); // median cut over 0|1
}

TEST(TopologyFile, CommentsAndBlankLinesIgnored)
{
    const Topology t = load("# a fabric\n"
                            "nodes 2   # two routers\n"
                            "\n"
                            "ports 2\n"
                            "link 0:1 1:1  # the only wire\n");
    EXPECT_EQ(t.numNodes(), 2);
    EXPECT_EQ(t.neighbor(1, 1), 0);
}

TEST(TopologyFile, EndpointsAndBisectionDirectives)
{
    const Topology t = load("nodes 3\n"
                            "ports 3\n"
                            "link 0:1 1:1\n"
                            "link 1:2 2:1\n"
                            "endpoints 0 2\n"
                            "bisection 5\n");
    EXPECT_EQ(t.numEndpoints(), 2);
    EXPECT_EQ(t.endpoint(0), 0);
    EXPECT_EQ(t.endpoint(1), 2);
    EXPECT_FALSE(t.isEndpoint(1));
    EXPECT_EQ(t.bisectionChannels(), 5);
}

TEST(TopologyFile, EndpointsDirectiveIsRepeatable)
{
    const Topology t = load("nodes 3\n"
                            "ports 3\n"
                            "link 0:1 1:1\n"
                            "link 1:2 2:1\n"
                            "endpoints 0\n"
                            "endpoints 2\n");
    EXPECT_EQ(t.numEndpoints(), 2);
}

TEST(TopologyFile, ErrorsNameFileAndLine)
{
    // Line 3 holds the broken link directive.
    expectLoadError("nodes 2\n"
                    "ports 2\n"
                    "link 0:1\n",
                    "fab.topo:3: 'link' wants two NODE:PORT ends");
}

TEST(TopologyFile, RejectsDirectiveBeforeHeader)
{
    expectLoadError("link 0:1 1:1\n",
                    "fab.topo:1: 'link' before the 'nodes' and "
                    "'ports' header");
}

TEST(TopologyFile, RejectsMissingHeader)
{
    expectLoadError("# nothing but comments\n",
                    "fab.topo: missing 'nodes' / 'ports' header");
    expectLoadError("nodes 4\n", "missing 'nodes' / 'ports' header");
}

TEST(TopologyFile, RejectsDuplicateHeader)
{
    expectLoadError("nodes 2\nnodes 2\n",
                    "fab.topo:2: duplicate 'nodes' directive");
    expectLoadError("nodes 2\nports 2\nports 2\n",
                    "fab.topo:3: duplicate 'ports' directive");
}

TEST(TopologyFile, RejectsBadCounts)
{
    expectLoadError("nodes 0\n", "node count must be >= 1");
    expectLoadError("nodes two\n",
                    "bad node count 'two' (want a non-negative "
                    "integer)");
    expectLoadError("nodes 2\nports 1\n",
                    "port count must be >= 2");
}

TEST(TopologyFile, RejectsBadLinkEnds)
{
    const std::string header = "nodes 2\nports 3\n";
    expectLoadError(header + "link 01 1:1\n",
                    "bad link end '01' (want NODE:PORT)");
    expectLoadError(header + "link 0:0 1:1\n",
                    "link end '0:0' uses the local port 0");
    expectLoadError(header + "link 0:1 5:1\n",
                    "link node 5 out of range (max 1)");
    expectLoadError(header + "link 0:1 1:9\n",
                    "link port 9 out of range (max 2)");
    // connect() rejections are re-labelled with the file position.
    expectLoadError(header + "link 0:1 1:1\nlink 0:1 1:2\n",
                    "fab.topo:4:");
}

TEST(TopologyFile, RejectsUnknownDirective)
{
    expectLoadError("nodes 2\nports 2\nwires 0:1 1:1\n",
                    "fab.topo:3: unknown directive 'wires'");
}

TEST(TopologyFile, RejectsDisconnectedGraph)
{
    // Two isolated nodes: the load-time connectivity check fires and
    // is labelled with the path.
    expectLoadError("nodes 2\nports 2\n", "fab.topo: ");
}

TEST(TopologyFile, RejectsBadEndpointList)
{
    const std::string body = "nodes 2\nports 2\nlink 0:1 1:1\n";
    expectLoadError(body + "endpoints\n",
                    "fab.topo:4: 'endpoints' wants node ids");
    expectLoadError(body + "endpoints 7\n",
                    "endpoint node 7 out of range (max 1)");
}

TEST(TopologyFile, RejectsBadBisection)
{
    const std::string body = "nodes 2\nports 2\nlink 0:1 1:1\n";
    expectLoadError(body + "bisection 0\n",
                    "bisection channel count must be >= 1");
    expectLoadError(body + "bisection 1\nbisection 1\n",
                    "fab.topo:5: duplicate 'bisection' directive");
}

TEST(TopologyFile, MissingFileNamesPath)
{
    try {
        loadTopologyFile("/nonexistent/fab.topo");
        FAIL() << "no ConfigError";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find(
                      "cannot open topology file '/nonexistent/"
                      "fab.topo'"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TopologySpecParse, CanonicalTokensRoundTrip)
{
    for (const std::string token :
         {"mesh", "torus", "fattree4x3", "fattree2x5",
          "dragonfly6x2x12", "file:fab.topo"}) {
        EXPECT_EQ(parseTopologySpec("--topology", token).str(), token);
    }
}

TEST(TopologySpecParse, DefaultsFillOmittedDims)
{
    const TopologySpec ft = parseTopologySpec("--topology", "fattree");
    EXPECT_EQ(ft.kind, TopologyKind::FatTree);
    EXPECT_EQ(ft.str(), "fattree4x3");
    const TopologySpec df =
        parseTopologySpec("--topology", "dragonfly");
    EXPECT_EQ(df.kind, TopologyKind::Dragonfly);
    EXPECT_EQ(df.str(), "dragonfly6x2x12");
}

TEST(TopologySpecParse, MeshKinds)
{
    EXPECT_TRUE(parseTopologySpec("--topology", "mesh").isMeshKind());
    EXPECT_TRUE(parseTopologySpec("--topology", "torus").isMeshKind());
    EXPECT_FALSE(
        parseTopologySpec("--topology", "fattree").isMeshKind());
}

/** Expect parseTopologySpec to reject 'token', naming 'flag'. */
void
expectSpecError(const std::string& flag, const std::string& token)
{
    try {
        parseTopologySpec(flag, token);
        FAIL() << "no ConfigError for: " << token;
    } catch (const ConfigError& e) {
        const std::string msg = e.what();
        EXPECT_EQ(msg.rfind("bad " + flag + " value '" + token + "'",
                            0),
                  0u)
            << msg;
    }
}

TEST(TopologySpecParse, ErrorsNameTheFlag)
{
    expectSpecError("--topology", "hypercube");
    expectSpecError("--topology", "fattree4");
    expectSpecError("--topology", "fattree4x3x2");
    expectSpecError("--topology", "fattreeKxN");
    expectSpecError("--topology", "dragonfly6x2");
    expectSpecError("--topology", "dragonfly6x0x12");
    expectSpecError("--topology", "file:");
    // The grid axis reuses the parser with its own label.
    expectSpecError("topology", "ring");
}

} // namespace
} // namespace lapses
