/**
 * @file
 * Campaign sharding and merge tests: the distributed-determinism
 * guarantee (a grid run as 1/3 + 2/3 + 3/3 shards and merged is
 * byte-identical to the unsharded run, JSONL and CSV, for any job
 * count), shard-spec parsing, the merge validator's negative paths
 * (overlapping shards, wrong campaign seed, foreign grid, truncated
 * trailing record), shard-aware resume validation, gap detection, and
 * --group-by aggregation.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/campaign.hpp"
#include "exp/merge.hpp"
#include "exp/result_sink.hpp"

namespace lapses
{
namespace
{

/** A fast 4x4-mesh campaign with 104 runs (8 series x 13 loads). */
std::vector<CampaignRun>
smallCampaign(std::uint64_t campaign_seed = 99)
{
    CampaignGrid grid;
    grid.base.radices = {4, 4};
    grid.base.msgLen = 4;
    grid.base.warmupMessages = 10;
    grid.base.measureMessages = 60;
    grid.campaignSeed = campaign_seed;
    grid.axes.models = {RouterModel::Proud, RouterModel::LaProud};
    grid.axes.selectors = {SelectorKind::StaticXY,
                           SelectorKind::Random};
    grid.axes.traffics = {TrafficKind::Uniform,
                          TrafficKind::Transpose};
    grid.axes.loads = {0.05, 0.08, 0.11, 0.14, 0.17, 0.2, 0.23,
                       0.26, 0.29, 0.32, 0.35, 0.38, 0.41};
    return grid.expand();
}

struct ShardOutput
{
    std::string jsonl;
    std::string csv;
};

ShardOutput
runShard(const std::vector<CampaignRun>& runs, const ShardSpec& shard,
         unsigned jobs)
{
    std::ostringstream json_os;
    std::ostringstream csv_os;
    JsonlSink json_sink(json_os);
    CsvSink csv_sink(csv_os);
    CampaignOptions opts;
    opts.jobs = jobs;
    opts.shard = shard;
    runCampaign(runs, opts, {&json_sink, &csv_sink});
    return {json_os.str(), csv_os.str()};
}

/** The campaign's outputs, unsharded and as three shards, run once. */
struct ShardFixture
{
    std::vector<CampaignRun> runs;
    ShardOutput whole;
    ShardOutput shard[3]; //!< 1/3, 2/3, 3/3 at different job counts
};

const ShardFixture&
fixture()
{
    static const ShardFixture f = [] {
        ShardFixture fx;
        fx.runs = smallCampaign();
        fx.whole = runShard(fx.runs, ShardSpec{}, 4);
        // Deliberately different --jobs per shard: the merged result
        // must not depend on any of them.
        const unsigned jobs[3] = {1, 2, 4};
        for (std::size_t k = 0; k < 3; ++k)
            fx.shard[k] =
                runShard(fx.runs, ShardSpec{k, 3}, jobs[k]);
        return fx;
    }();
    return f;
}

ShardFile
parseString(const std::string& text, const std::string& label,
            SinkFormat format)
{
    std::istringstream is(text);
    return parseShardStream(is, label, format);
}

std::string
mergeAll(const std::vector<ShardFile>& shards,
         const std::vector<CampaignRun>& runs, SinkFormat format,
         MergeReport* report_out = nullptr)
{
    std::ostringstream os;
    const MergeReport report =
        mergeShardFiles(shards, runs, os, format);
    if (report_out != nullptr)
        *report_out = report;
    return os.str();
}

TEST(ShardSpec, ParsesTheCliForm)
{
    const ShardSpec one_of_three = parseShardSpec("1/3");
    EXPECT_EQ(one_of_three.index, 0u);
    EXPECT_EQ(one_of_three.count, 3u);
    const ShardSpec last = parseShardSpec("3/3");
    EXPECT_EQ(last.index, 2u);
    EXPECT_EQ(last.str(), "3/3");
    const ShardSpec whole = parseShardSpec("1/1");
    EXPECT_TRUE(whole.isAll());

    EXPECT_THROW(parseShardSpec("0/3"), ConfigError);
    EXPECT_THROW(parseShardSpec("4/3"), ConfigError);
    EXPECT_THROW(parseShardSpec("1/0"), ConfigError);
    EXPECT_THROW(parseShardSpec("3"), ConfigError);
    EXPECT_THROW(parseShardSpec("a/b"), ConfigError);
    EXPECT_THROW(parseShardSpec("1/3/5"), ConfigError);
    EXPECT_THROW(parseShardSpec(""), ConfigError);
}

TEST(ShardSpec, OwnershipPartitionsRunIndices)
{
    const ShardSpec shards[3] = {{0, 3}, {1, 3}, {2, 3}};
    for (std::size_t i = 0; i < 100; ++i) {
        int owners = 0;
        for (const ShardSpec& s : shards)
            owners += s.owns(i) ? 1 : 0;
        EXPECT_EQ(owners, 1) << "run " << i;
    }
    EXPECT_THROW((ShardSpec{3, 3}.validate()), ConfigError);
    EXPECT_THROW((ShardSpec{0, 0}.validate()), ConfigError);
}

TEST(ShardSpec, ParsesTheWeightedCliForm)
{
    // k/M:w — M weight units, this shard owns units k-1 .. k-2+w.
    const ShardSpec fast = parseShardSpec("1/4:3");
    EXPECT_EQ(fast.index, 0u);
    EXPECT_EQ(fast.count, 4u);
    EXPECT_EQ(fast.weight, 3u);
    EXPECT_EQ(fast.str(), "1/4:3");
    const ShardSpec slow = parseShardSpec("4/4:1");
    EXPECT_EQ(slow.index, 3u);
    EXPECT_EQ(slow.weight, 1u);
    EXPECT_EQ(slow.str(), "4/4"); // weight 1 prints the classic form
    EXPECT_TRUE(parseShardSpec("1/3:3").isAll());

    EXPECT_THROW(parseShardSpec("1/4:0"), ConfigError);
    EXPECT_THROW(parseShardSpec("2/4:4"), ConfigError); // units 2..5
    EXPECT_THROW(parseShardSpec("1/4:"), ConfigError);
    EXPECT_THROW(parseShardSpec("1:3/4"), ConfigError);
    EXPECT_THROW(parseShardSpec("1/4:x"), ConfigError);
    // k-1+w must not be allowed to wrap around to "fits".
    EXPECT_THROW(parseShardSpec("2/5:18446744073709551615"),
                 ConfigError);
}

TEST(ShardSpec, WeightedOwnershipPartitionsRunIndices)
{
    // A 3x-faster host paired with a 1x host, and an uneven trio:
    // every partition of the unit range covers each run exactly once.
    const std::vector<std::vector<ShardSpec>> partitions = {
        {{0, 4, 3}, {3, 4, 1}},
        {{0, 5, 2}, {2, 5, 1}, {3, 5, 2}},
    };
    for (const auto& shards : partitions) {
        for (const ShardSpec& s : shards)
            EXPECT_NO_THROW(s.validate());
        for (std::size_t i = 0; i < 100; ++i) {
            int owners = 0;
            for (const ShardSpec& s : shards)
                owners += s.owns(i) ? 1 : 0;
            EXPECT_EQ(owners, 1) << "run " << i;
        }
    }
    EXPECT_THROW((ShardSpec{2, 4, 3}.validate()), ConfigError);
    EXPECT_THROW((ShardSpec{0, 4, 0}.validate()), ConfigError);
}

TEST(ShardMerge, WeightedShardsMergeByteIdenticalToUnsharded)
{
    // Heterogeneous hosts: one takes 3 of 4 weight units, the other 1.
    // The two shard files must partition the runs and reassemble into
    // the canonical unsharded output, JSONL and CSV alike.
    const ShardFixture& fx = fixture();
    const ShardSpec specs[2] = {{0, 4, 3}, {3, 4, 1}};
    const ShardOutput outputs[2] = {runShard(fx.runs, specs[0], 2),
                                    runShard(fx.runs, specs[1], 1)};

    for (SinkFormat format : {SinkFormat::Jsonl, SinkFormat::Csv}) {
        const bool json = format == SinkFormat::Jsonl;
        std::vector<ShardFile> shards;
        for (std::size_t k = 0; k < 2; ++k) {
            shards.push_back(parseString(
                json ? outputs[k].jsonl : outputs[k].csv,
                "weighted" + std::to_string(k), format));
            for (const auto& [index, line] : shards.back().records)
                EXPECT_TRUE(specs[k].owns(index)) << index;
        }
        // The fast shard carries ~3x the slow one's records.
        EXPECT_GT(shards[0].records.size(),
                  2 * shards[1].records.size());
        EXPECT_NO_THROW(validateShardFiles(shards, fx.runs));
        MergeReport report;
        const std::string merged =
            mergeAll(shards, fx.runs, format, &report);
        EXPECT_TRUE(report.complete());
        EXPECT_EQ(merged, json ? fx.whole.jsonl : fx.whole.csv);
    }
}

TEST(ShardMerge, ThreeShardsMergeByteIdenticalToUnsharded)
{
    const ShardFixture& fx = fixture();
    ASSERT_GE(fx.runs.size(), 100u);

    // Each shard emits exactly its slice, in run-index order.
    for (std::size_t k = 0; k < 3; ++k) {
        const ShardFile file = parseString(
            fx.shard[k].jsonl, "shard" + std::to_string(k),
            SinkFormat::Jsonl);
        EXPECT_FALSE(file.records.empty());
        for (const auto& [index, line] : file.records)
            EXPECT_EQ(index % 3, k);
    }

    for (SinkFormat format : {SinkFormat::Jsonl, SinkFormat::Csv}) {
        const bool json = format == SinkFormat::Jsonl;
        std::vector<ShardFile> shards;
        for (std::size_t k = 0; k < 3; ++k) {
            shards.push_back(parseString(
                json ? fx.shard[k].jsonl : fx.shard[k].csv,
                "shard" + std::to_string(k), format));
        }
        EXPECT_NO_THROW(validateShardFiles(shards, fx.runs));
        MergeReport report;
        const std::string merged =
            mergeAll(shards, fx.runs, format, &report);
        EXPECT_TRUE(report.complete());
        EXPECT_EQ(report.merged, fx.runs.size());
        EXPECT_EQ(merged, json ? fx.whole.jsonl : fx.whole.csv);
    }
}

TEST(ShardMerge, SaturationInferenceSurvivesSharding)
{
    // A series driven far past saturation: the unsharded run infers
    // the heavy-load tail from the lighter loads. Shards must emit
    // the exact same inferred records even when another shard owns
    // the run that actually saturated.
    CampaignGrid grid;
    grid.base.radices = {4, 4};
    grid.base.msgLen = 8;
    grid.base.warmupMessages = 10;
    grid.base.measureMessages = 120;
    grid.base.latencySatCutoff = 200.0;
    grid.axes.loads = {0.3, 2.0, 3.0, 4.0};
    const auto runs = grid.expand();

    const ShardOutput whole = runShard(runs, ShardSpec{}, 1);
    ASSERT_NE(whole.jsonl.find("\"saturated\":true"),
              std::string::npos);

    std::vector<ShardFile> shards;
    for (std::size_t k = 0; k < 2; ++k) {
        shards.push_back(
            parseString(runShard(runs, ShardSpec{k, 2}, 1).jsonl,
                        "shard" + std::to_string(k),
                        SinkFormat::Jsonl));
    }
    EXPECT_NO_THROW(validateShardFiles(shards, runs));
    EXPECT_EQ(mergeAll(shards, runs, SinkFormat::Jsonl), whole.jsonl);
}

TEST(ShardMerge, TelemetryWindowAxisShardsMergeByteIdentical)
{
    // telemetry_window as a first-class grid axis: sharded execution
    // with per-run telemetry enabled must still reassemble into the
    // unsharded campaign's bytes (the window is pure observation).
    CampaignGrid grid;
    grid.base.radices = {4, 4};
    grid.base.msgLen = 4;
    grid.base.warmupMessages = 10;
    grid.base.measureMessages = 60;
    grid.campaignSeed = 7;
    grid.axes.telemetryWindows = {0, 64};
    grid.axes.loads = {0.1, 0.2};
    const std::vector<CampaignRun> runs = grid.expand();
    ASSERT_EQ(runs.size(), 4u);

    const ShardOutput whole = runShard(runs, ShardSpec{}, 2);
    EXPECT_NE(whole.jsonl.find("\"telemetry_window\":0"),
              std::string::npos);
    EXPECT_NE(whole.jsonl.find("\"telemetry_window\":64"),
              std::string::npos);
    EXPECT_NE(whole.csv.find(",telemetry_window,"),
              std::string::npos);

    for (SinkFormat format : {SinkFormat::Jsonl, SinkFormat::Csv}) {
        const bool json = format == SinkFormat::Jsonl;
        std::vector<ShardFile> shards;
        for (std::size_t k = 0; k < 2; ++k) {
            const ShardOutput out =
                runShard(runs, ShardSpec{k, 2}, 1);
            shards.push_back(parseString(json ? out.jsonl : out.csv,
                                         "telem" + std::to_string(k),
                                         format));
        }
        EXPECT_NO_THROW(validateShardFiles(shards, runs));
        MergeReport report;
        const std::string merged =
            mergeAll(shards, runs, format, &report);
        EXPECT_TRUE(report.complete());
        EXPECT_EQ(merged, json ? whole.jsonl : whole.csv);
    }
}

TEST(ShardMerge, WorkloadAxisClosedLoopShardsMergeByteIdentical)
{
    // workload as a first-class grid axis: a campaign mixing open-loop
    // and closed-loop (request/reply, with mid-run faults) runs,
    // executed as two shards, must reassemble into the unsharded
    // bytes — the reliability layer's retries, timeouts, and SLO
    // percentiles included.
    CampaignGrid grid;
    grid.base.radices = {4, 4};
    grid.base.msgLen = 4;
    grid.base.warmupMessages = 10;
    grid.base.measureMessages = 60;
    grid.base.table = TableKind::Full;
    grid.base.servers = 4;
    grid.base.inflightWindow = 2;
    grid.base.requestTimeout = 300;
    grid.base.serviceTime = 8;
    grid.base.faultCount = 1;
    grid.base.faultStart = 300;
    grid.base.faultPolicy = FaultPolicy::Drop;
    grid.campaignSeed = 11;
    grid.axes.workloads = {WorkloadKind::Open,
                           WorkloadKind::RequestReply};
    grid.axes.loads = {0.1, 0.2};
    const std::vector<CampaignRun> runs = grid.expand();
    ASSERT_EQ(runs.size(), 4u);
    EXPECT_EQ(runs[0].config.workload, WorkloadKind::Open);
    EXPECT_EQ(runs[2].config.workload, WorkloadKind::RequestReply);

    const ShardOutput whole = runShard(runs, ShardSpec{}, 2);
    EXPECT_NE(whole.jsonl.find("\"workload\":\"open\""),
              std::string::npos);
    EXPECT_NE(whole.jsonl.find("\"workload\":\"request-reply\""),
              std::string::npos);
    EXPECT_NE(whole.jsonl.find("\"request_latency_p99\":"),
              std::string::npos);
    EXPECT_NE(whole.csv.find(",workload,"), std::string::npos);

    for (SinkFormat format : {SinkFormat::Jsonl, SinkFormat::Csv}) {
        const bool json = format == SinkFormat::Jsonl;
        std::vector<ShardFile> shards;
        for (std::size_t k = 0; k < 2; ++k) {
            const ShardOutput out =
                runShard(runs, ShardSpec{k, 2}, 1);
            shards.push_back(parseString(json ? out.jsonl : out.csv,
                                         "wl" + std::to_string(k),
                                         format));
        }
        EXPECT_NO_THROW(validateShardFiles(shards, runs));
        MergeReport report;
        const std::string merged =
            mergeAll(shards, runs, format, &report);
        EXPECT_TRUE(report.complete());
        EXPECT_EQ(merged, json ? whole.jsonl : whole.csv);
    }

    // --group-by workload folds the load axis and reports the request
    // SLO percentiles: populated for the request-reply group, empty
    // cells for the open-loop group.
    std::vector<ShardFile> shards;
    for (std::size_t k = 0; k < 2; ++k) {
        const ShardOutput out = runShard(runs, ShardSpec{k, 2}, 1);
        shards.push_back(parseString(out.jsonl,
                                     "ag" + std::to_string(k),
                                     SinkFormat::Jsonl));
    }
    std::ostringstream os;
    writeAggregateCsv(shards, runs, {"workload"}, os);
    std::istringstream lines(os.str());
    std::string header;
    std::string open_row;
    std::string rr_row;
    ASSERT_TRUE(std::getline(lines, header));
    ASSERT_TRUE(std::getline(lines, open_row));
    ASSERT_TRUE(std::getline(lines, rr_row));
    EXPECT_EQ(open_row.compare(0, 5, "open,"), 0) << open_row;
    EXPECT_EQ(rr_row.compare(0, 14, "request-reply,"), 0) << rr_row;
    // The last two columns are request_latency_p99/p999.
    EXPECT_EQ(open_row.substr(open_row.size() - 2), ",,") << open_row;
    EXPECT_NE(rr_row.substr(rr_row.size() - 2), ",,") << rr_row;
}

/** Drop every "workload" field, imitating a shard file written
 *  before the closed-loop coordinate existed. */
std::string
stripWorkloadField(std::string text)
{
    const std::string key = "\"workload\":";
    for (std::size_t pos = text.find(key); pos != std::string::npos;
         pos = text.find(key, pos)) {
        const std::size_t end = text.find(',', pos);
        text.erase(pos, end - pos + 1);
    }
    return text;
}

TEST(MergeValidator, RejectsStalePreWorkloadShards)
{
    const ShardFixture& fx = fixture();
    const std::vector<ShardFile> mixed = {
        parseString(stripWorkloadField(fx.shard[0].jsonl),
                    "pre-workload.jsonl", SinkFormat::Jsonl),
        parseString(fx.shard[1].jsonl, "fresh.jsonl",
                    SinkFormat::Jsonl),
    };
    try {
        validateShardFiles(mixed, fx.runs);
        FAIL() << "mixed workload schema not rejected";
    } catch (const ConfigError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("workload"), std::string::npos) << what;
        EXPECT_NE(what.find("pre-workload.jsonl"), std::string::npos)
            << what;
    }
}

/** Drop every "telemetry_window" field, imitating a shard file
 *  written before the coordinate existed. */
std::string
stripTelemetryField(std::string text)
{
    const std::string key = "\"telemetry_window\":";
    for (std::size_t pos = text.find(key); pos != std::string::npos;
         pos = text.find(key, pos)) {
        const std::size_t end = text.find(',', pos);
        text.erase(pos, end - pos + 1);
    }
    return text;
}

TEST(MergeValidator, RejectsStalePreTelemetryShards)
{
    const ShardFixture& fx = fixture();

    // A bare (pre-telemetry) shard next to a current one: rejected
    // with the bare file named.
    const std::vector<ShardFile> mixed = {
        parseString(stripTelemetryField(fx.shard[0].jsonl),
                    "stale.jsonl", SinkFormat::Jsonl),
        parseString(fx.shard[1].jsonl, "fresh.jsonl",
                    SinkFormat::Jsonl),
    };
    try {
        validateShardFiles(mixed, fx.runs);
        FAIL() << "mixed telemetry schema not rejected";
    } catch (const ConfigError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("telemetry"), std::string::npos) << what;
        EXPECT_NE(what.find("stale.jsonl"), std::string::npos) << what;
    }

    // A single file whose records straddle the schema boundary.
    const std::size_t first_eol = fx.shard[0].jsonl.find('\n');
    ASSERT_NE(first_eol, std::string::npos);
    const std::string straddling =
        stripTelemetryField(
            fx.shard[0].jsonl.substr(0, first_eol + 1)) +
        fx.shard[0].jsonl.substr(first_eol + 1);
    const std::vector<ShardFile> inner = {
        parseString(straddling, "torn.jsonl", SinkFormat::Jsonl),
    };
    try {
        validateShardFiles(inner, fx.runs);
        FAIL() << "intra-file schema mix not rejected";
    } catch (const ConfigError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("telemetry"), std::string::npos) << what;
        EXPECT_NE(what.find("torn.jsonl"), std::string::npos) << what;
    }
}

TEST(ShardMerge, NonOwnedRunsComeBackUnexecuted)
{
    const ShardFixture& fx = fixture();
    CampaignOptions opts;
    opts.shard = ShardSpec{1, 3};
    const auto results = runCampaign(fx.runs, opts);
    ASSERT_EQ(results.size(), fx.runs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].run.index, i);
        EXPECT_EQ(results[i].executed, opts.shard.owns(i));
    }
}

TEST(MergeValidator, RejectsOverlappingShards)
{
    const ShardFixture& fx = fixture();
    // Shard 2/3 presented twice under different names.
    const std::vector<ShardFile> shards = {
        parseString(fx.shard[1].jsonl, "a.jsonl", SinkFormat::Jsonl),
        parseString(fx.shard[1].jsonl, "b.jsonl", SinkFormat::Jsonl),
    };
    try {
        validateShardFiles(shards, fx.runs);
        FAIL() << "overlap not rejected";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("overlapping"),
                  std::string::npos)
            << e.what();
    }
}

TEST(MergeValidator, RejectsAMisSeededShard)
{
    const ShardFixture& fx = fixture();
    // The same grid expanded under a different campaign seed: every
    // record's seed coordinate is stale.
    const std::vector<CampaignRun> other = smallCampaign(1234);
    const std::vector<ShardFile> shards = {
        parseString(fx.shard[0].jsonl, "s1.jsonl", SinkFormat::Jsonl),
    };
    try {
        validateShardFiles(shards, other);
        FAIL() << "mis-seeded shard not rejected";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("mismatched"),
                  std::string::npos)
            << e.what();
    }
}

TEST(MergeValidator, RejectsAForeignGridShard)
{
    const ShardFixture& fx = fixture();
    // A campaign that expands to fewer runs than the shard covers —
    // an exact prefix of the big grid, so the overflowing indices
    // (not mismatched coordinates) are what gets caught.
    CampaignGrid narrow;
    narrow.base.radices = {4, 4};
    narrow.base.msgLen = 4;
    narrow.base.warmupMessages = 10;
    narrow.base.measureMessages = 60;
    narrow.campaignSeed = 99;
    narrow.axes.models = {RouterModel::Proud};
    narrow.axes.selectors = {SelectorKind::StaticXY};
    narrow.axes.traffics = {TrafficKind::Uniform};
    narrow.axes.loads = {0.05, 0.08};
    const std::vector<CampaignRun> runs = narrow.expand();
    const std::vector<ShardFile> shards = {
        parseString(fx.shard[0].jsonl, "s1.jsonl", SinkFormat::Jsonl),
    };
    try {
        validateShardFiles(shards, runs);
        FAIL() << "foreign shard not rejected";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("foreign"),
                  std::string::npos)
            << e.what();
    }
}

TEST(MergeValidator, RejectsATruncatedTrailingRecord)
{
    const ShardFixture& fx = fixture();
    const std::string cut =
        fx.shard[0].jsonl.substr(0, fx.shard[0].jsonl.size() - 10);
    try {
        parseString(cut, "cut.jsonl", SinkFormat::Jsonl);
        FAIL() << "truncated JSONL record not rejected";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos)
            << e.what();
    }

    const std::string cut_csv =
        fx.shard[0].csv.substr(0, fx.shard[0].csv.size() - 3);
    EXPECT_THROW(parseString(cut_csv, "cut.csv", SinkFormat::Csv),
                 ConfigError);
}

TEST(MergeValidator, RejectsDuplicateRecordsWithinOneFile)
{
    const ShardFixture& fx = fixture();
    const std::string doubled = fx.shard[0].jsonl + fx.shard[0].jsonl;
    EXPECT_THROW(parseString(doubled, "dup.jsonl", SinkFormat::Jsonl),
                 ConfigError);
}

TEST(MergeValidator, RejectsABadCsvHeader)
{
    EXPECT_THROW(parseString("not,a,campaign,header\n1,2,3,4\n",
                             "bad.csv", SinkFormat::Csv),
                 ConfigError);
    // An empty file is a valid (if useless) shard, not an error.
    EXPECT_TRUE(parseString("", "empty.csv", SinkFormat::Csv)
                    .records.empty());
    EXPECT_TRUE(parseString("", "empty.jsonl", SinkFormat::Jsonl)
                    .records.empty());
}

TEST(MergeValidator, ReportsGapsForRefill)
{
    const ShardFixture& fx = fixture();
    // Shard 2/3 never came back from its machine.
    const std::vector<ShardFile> shards = {
        parseString(fx.shard[0].jsonl, "s1.jsonl", SinkFormat::Jsonl),
        parseString(fx.shard[2].jsonl, "s3.jsonl", SinkFormat::Jsonl),
    };
    EXPECT_NO_THROW(validateShardFiles(shards, fx.runs));
    MergeReport report;
    const std::string merged =
        mergeAll(shards, fx.runs, SinkFormat::Jsonl, &report);
    EXPECT_FALSE(report.complete());
    EXPECT_EQ(report.merged + report.missing.size(), report.total);
    for (std::size_t index : report.missing)
        EXPECT_EQ(index % 3, 1u) << "gap not from the lost shard";
    // What did merge is still ordered and clean: refilling the gaps
    // (lapses-campaign --shard 2/3) completes the canonical file.
    EXPECT_LT(merged.size(), fx.whole.jsonl.size());
}

TEST(ResumeValidation, CatchesAFileFromADifferentShard)
{
    const ShardFixture& fx = fixture();
    std::istringstream is(fx.shard[0].jsonl);
    const ResumeState state = scanResumeJsonl(is);
    ASSERT_FALSE(state.completed.empty());

    // Resuming shard 1/3's file as shard 1/3: fine.
    EXPECT_NO_THROW(validateResume(state, fx.runs, SinkFormat::Jsonl,
                                   ShardSpec{0, 3}));
    // As shard 2/3 (or unsharded-but-different splits): every record
    // is outside the requested shard.
    EXPECT_THROW(validateResume(state, fx.runs, SinkFormat::Jsonl,
                                ShardSpec{1, 3}),
                 ConfigError);
    EXPECT_THROW(validateResume(state, fx.runs, SinkFormat::Jsonl,
                                ShardSpec{1, 2}),
                 ConfigError);
    // The unsharded campaign owns everything, so the slice resumes.
    EXPECT_NO_THROW(
        validateResume(state, fx.runs, SinkFormat::Jsonl, {}));
}

TEST(ResumeValidation, CatchesARecordOutsideTheCampaign)
{
    const ShardFixture& fx = fixture();
    ResumeState state;
    state.completed.insert(fx.runs.size() + 7);
    state.records.emplace(fx.runs.size() + 7, "{\"run\":111}");
    EXPECT_THROW(
        validateResume(state, fx.runs, SinkFormat::Jsonl, {}),
        ConfigError);
}

TEST(Aggregation, GroupsOverGridAxesWithSummaryColumns)
{
    const ShardFixture& fx = fixture();
    std::vector<ShardFile> shards;
    for (std::size_t k = 0; k < 3; ++k) {
        shards.push_back(parseString(fx.shard[k].jsonl,
                                     "s" + std::to_string(k),
                                     SinkFormat::Jsonl));
    }
    std::ostringstream os;
    writeAggregateCsv(shards, fx.runs, {"traffic", "load"}, os);
    const std::string csv = os.str();

    std::istringstream lines(csv);
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header,
              "traffic,load,runs,saturated,latency_mean,latency_p50,"
              "latency_p99,throughput_mean,throughput_p50,"
              "throughput_p99,request_latency_p99,"
              "request_latency_p999");
    std::size_t rows = 0;
    std::string line;
    while (std::getline(lines, line)) {
        ++rows;
        // 2 traffics x 13 loads; each group folds the 4 model x
        // selector series -> "...,4," runs column right after the
        // axis cells.
        EXPECT_NE(line.find(",4,"), std::string::npos) << line;
    }
    EXPECT_EQ(rows, 2u * 13u);

    // CSV-format shards aggregate to the identical table.
    std::vector<ShardFile> csv_shards;
    for (std::size_t k = 0; k < 3; ++k) {
        csv_shards.push_back(parseString(fx.shard[k].csv,
                                         "c" + std::to_string(k),
                                         SinkFormat::Csv));
    }
    std::ostringstream csv_os;
    writeAggregateCsv(csv_shards, fx.runs, {"traffic", "load"},
                      csv_os);
    EXPECT_EQ(csv_os.str(), csv);

    EXPECT_THROW(
        writeAggregateCsv(shards, fx.runs, {"bogus"}, os),
        ConfigError);
    EXPECT_THROW(writeAggregateCsv(shards, fx.runs, {}, os),
                 ConfigError);
}

TEST(Aggregation, RunAxisValuesMatchTheSinks)
{
    const ShardFixture& fx = fixture();
    const CampaignRun& run = fx.runs.front();
    EXPECT_EQ(runAxisValue(run, "model"), "proud");
    EXPECT_EQ(runAxisValue(run, "traffic"), "uniform");
    EXPECT_EQ(runAxisValue(run, "load"), "0.05");
    EXPECT_EQ(runAxisValue(run, "mesh"), "4x4");
    EXPECT_EQ(runAxisValue(run, "msglen"), "4");
    EXPECT_THROW(runAxisValue(run, "latency"), ConfigError);
}

} // namespace
} // namespace lapses
