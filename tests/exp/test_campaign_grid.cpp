/**
 * @file
 * Unit tests for campaign-grid expansion: cross-product sizes, axis
 * ordering, seed derivation, multi-grid numbering, axis validation,
 * and the --grid spec parser.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exp/campaign.hpp"
#include "exp/campaign_cli.hpp"
#include "exp/grid_spec.hpp"

namespace lapses
{
namespace
{

TEST(CampaignGrid, EmptyAxesExpandToOneBaseRun)
{
    CampaignGrid grid;
    const auto runs = grid.expand();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].index, 0u);
    EXPECT_EQ(runs[0].series, 0u);
    EXPECT_EQ(runs[0].config.normalizedLoad,
              grid.base.normalizedLoad);
}

TEST(CampaignGrid, CrossProductCountsMultiply)
{
    CampaignGrid grid;
    grid.axes.models = {RouterModel::Proud, RouterModel::LaProud};
    grid.axes.selectors = {SelectorKind::StaticXY, SelectorKind::Lru,
                           SelectorKind::MaxCredit};
    grid.axes.loads = {0.1, 0.2, 0.3, 0.4};
    EXPECT_EQ(grid.axes.runCount(), 2u * 3u * 4u);
    const auto runs = grid.expand();
    ASSERT_EQ(runs.size(), 24u);
    // Load varies fastest: one series per (model, selector) pair.
    EXPECT_EQ(runs.back().series, 5u);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].index, i);
        EXPECT_EQ(runs[i].series, i / 4);
        EXPECT_DOUBLE_EQ(runs[i].config.normalizedLoad,
                         grid.axes.loads[i % 4]);
    }
}

TEST(CampaignGrid, SeedsDeriveFromCampaignSeedAndIndex)
{
    CampaignGrid grid;
    grid.campaignSeed = 42;
    grid.axes.loads = {0.1, 0.2, 0.3};
    const auto runs = grid.expand();
    for (const CampaignRun& run : runs) {
        EXPECT_EQ(run.config.seed, deriveSeed(42, run.index));
    }
    EXPECT_NE(runs[0].config.seed, runs[1].config.seed);
}

TEST(CampaignGrid, DeriveSeedsOffKeepsBaseSeed)
{
    CampaignGrid grid;
    grid.base.seed = 7;
    grid.deriveSeeds = false;
    grid.axes.loads = {0.1, 0.2};
    for (const CampaignRun& run : grid.expand())
        EXPECT_EQ(run.config.seed, 7u);
}

TEST(CampaignGrid, OffsetsShiftGlobalNumbering)
{
    CampaignGrid grid;
    grid.axes.loads = {0.1, 0.2};
    const auto runs = grid.expand(10, 3);
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].index, 10u);
    EXPECT_EQ(runs[1].index, 11u);
    EXPECT_EQ(runs[0].series, 3u);
    // The seed stream follows the global index.
    EXPECT_EQ(runs[0].config.seed,
              deriveSeed(grid.campaignSeed, 10));
}

TEST(CampaignGrid, ExpandGridsNumbersAcrossGrids)
{
    CampaignGrid a;
    a.axes.loads = {0.1, 0.2};
    CampaignGrid b;
    b.axes.selectors = {SelectorKind::StaticXY, SelectorKind::Lru};
    b.axes.loads = {0.3};
    const auto runs = expandGrids({a, b});
    ASSERT_EQ(runs.size(), 4u);
    EXPECT_EQ(runs[2].index, 2u);
    EXPECT_EQ(runs[2].series, 1u);
    EXPECT_EQ(runs[3].series, 2u);
}

TEST(CampaignGrid, InvalidCombinationThrowsAtExpansion)
{
    CampaignGrid grid;
    grid.axes.vcCounts = {4};
    grid.axes.escapeVcs = {4}; // escape must be < vcs
    EXPECT_THROW(grid.expand(), ConfigError);
}

TEST(GridSpec, ParsesAxesAndRanges)
{
    CampaignGrid grid;
    applyGridSpec("model=proud,la-proud; routing = duato;"
                  "load=0.1:0.3:0.1,0.5; msglen=4,20",
                  grid);
    EXPECT_EQ(grid.axes.models.size(), 2u);
    ASSERT_EQ(grid.axes.routings.size(), 1u);
    EXPECT_EQ(grid.axes.routings[0], RoutingAlgo::DuatoFullyAdaptive);
    ASSERT_EQ(grid.axes.loads.size(), 4u);
    EXPECT_DOUBLE_EQ(grid.axes.loads[3], 0.5);
    EXPECT_EQ(grid.axes.msgLens, (std::vector<int>{4, 20}));
    EXPECT_EQ(grid.axes.runCount(), 2u * 1u * 4u * 2u);
}

TEST(GridSpec, RejectsUnknownAxisAndBadValues)
{
    CampaignGrid grid;
    EXPECT_THROW(applyGridSpec("warp=9", grid), ConfigError);
    EXPECT_THROW(applyGridSpec("model=warp-proud", grid), ConfigError);
    EXPECT_THROW(applyGridSpec("load=0.5:0.1:0.1", grid), ConfigError);
    EXPECT_THROW(applyGridSpec("msglen=", grid), ConfigError);
    EXPECT_THROW(applyGridSpec("msglen", grid), ConfigError);
}

TEST(GridSpec, ParsesWorkloadAxis)
{
    CampaignGrid grid;
    applyGridSpec("workload=open,request-reply; load=0.1,0.2", grid);
    ASSERT_EQ(grid.axes.workloads.size(), 2u);
    EXPECT_EQ(grid.axes.workloads[0], WorkloadKind::Open);
    EXPECT_EQ(grid.axes.workloads[1], WorkloadKind::RequestReply);
    EXPECT_EQ(grid.axes.runCount(), 2u * 2u);
    const auto runs = grid.expand();
    ASSERT_EQ(runs.size(), 4u);
    // workload varies slower than load.
    EXPECT_EQ(runs[0].config.workload, WorkloadKind::Open);
    EXPECT_EQ(runs[1].config.workload, WorkloadKind::Open);
    EXPECT_EQ(runs[2].config.workload, WorkloadKind::RequestReply);
    EXPECT_EQ(runs[3].config.workload, WorkloadKind::RequestReply);
    EXPECT_THROW(applyGridSpec("workload=closed", grid), ConfigError);
}

TEST(GridSpec, ParsesFaultAxes)
{
    CampaignGrid grid;
    applyGridSpec("faults=0,1,2,4; fault-seed=7,8; load=0.2", grid);
    EXPECT_EQ(grid.axes.faultCounts, (std::vector<int>{0, 1, 2, 4}));
    EXPECT_EQ(grid.axes.faultSeeds,
              (std::vector<std::uint64_t>{7, 8}));
    EXPECT_EQ(grid.axes.runCount(), 4u * 2u * 1u);
    const auto runs = grid.expand();
    ASSERT_EQ(runs.size(), 8u);
    // fault-seed varies faster than faults; load fastest of all.
    EXPECT_EQ(runs[0].config.faultCount, 0);
    EXPECT_EQ(runs[0].config.faultSeed, 7u);
    EXPECT_EQ(runs[1].config.faultSeed, 8u);
    EXPECT_EQ(runs[2].config.faultCount, 1);
    EXPECT_THROW(applyGridSpec("faults=-1", grid), ConfigError);
    EXPECT_THROW(applyGridSpec("faults=x", grid), ConfigError);
    EXPECT_THROW(applyGridSpec("fault-seed=y", grid), ConfigError);
    // strtoull would silently wrap "-1" to 2^64-1; must be rejected.
    EXPECT_THROW(applyGridSpec("fault-seed=-1", grid), ConfigError);
    EXPECT_THROW(
        applyGridSpec("fault-seed=99999999999999999999999", grid),
        ConfigError);
    EXPECT_THROW(applyGridSpec("msglen=99999999999", grid),
                 ConfigError);
}

/** Drive CampaignCli::consume like main() would. */
bool
consumeFlags(CampaignCli& cli, std::vector<std::string> args)
{
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("test"));
    for (std::string& a : args)
        argv.push_back(a.data());
    for (int i = 1; i < static_cast<int>(argv.size()); ++i) {
        if (!cli.consume(static_cast<int>(argv.size()), argv.data(),
                         i)) {
            return false;
        }
    }
    return true;
}

TEST(CampaignCliFlags, HotspotFracRejectsGarbageAndOutOfRange)
{
    // std::atof used to turn garbage into 0.0 and silently run a
    // uniform-ish campaign; the checked parser must name the flag.
    // "nan" parses as a double but must fail the range check — NaN
    // compares false to both bounds, so the naive check missed it.
    for (const char* bad :
         {"x", "0.5x", "", "1.5", "-0.1", "nan", "inf", "nan0"}) {
        CampaignCli cli;
        try {
            consumeFlags(cli, {"--hotspot-frac", bad});
            FAIL() << "accepted --hotspot-frac " << bad;
        } catch (const ConfigError& e) {
            EXPECT_NE(std::string(e.what()).find("--hotspot-frac"),
                      std::string::npos)
                << e.what();
        }
    }
    CampaignCli cli;
    EXPECT_TRUE(consumeFlags(cli, {"--hotspot-frac", "0.25"}));
    EXPECT_DOUBLE_EQ(cli.base.hotspot.fraction, 0.25);
}

TEST(CampaignCliFlags, LoadRejectsGarbage)
{
    CampaignCli cli;
    EXPECT_THROW(consumeFlags(cli, {"--load", "fast"}), ConfigError);
    EXPECT_THROW(consumeFlags(cli, {"--load", "0"}), ConfigError);
    EXPECT_TRUE(consumeFlags(cli, {"--load", "0.4"}));
    EXPECT_DOUBLE_EQ(cli.base.normalizedLoad, 0.4);
}

TEST(CampaignCliFlags, FaultFlagsReachTheBaseConfig)
{
    CampaignCli cli;
    EXPECT_TRUE(consumeFlags(
        cli, {"--faults", "3", "--fault-seed", "99", "--fault-start",
              "500", "--fault-spacing", "250", "--reconfig-latency",
              "50", "--fault-policy", "drop", "--fail-link",
              "5:1@300", "--repair-link", "5:1@900"}));
    EXPECT_EQ(cli.base.faultCount, 3);
    EXPECT_EQ(cli.base.faultSeed, 99u);
    EXPECT_EQ(cli.base.faultStart, 500u);
    EXPECT_EQ(cli.base.faultSpacing, 250u);
    EXPECT_EQ(cli.base.reconfigLatency, 50u);
    EXPECT_EQ(cli.base.faultPolicy, FaultPolicy::Drop);
    ASSERT_EQ(cli.base.faultEvents.size(), 2u);
    EXPECT_TRUE(cli.base.faultEvents[0].down);
    EXPECT_FALSE(cli.base.faultEvents[1].down);
    EXPECT_THROW(consumeFlags(cli, {"--faults", "-2"}), ConfigError);
    EXPECT_THROW(consumeFlags(cli, {"--fault-policy", "retry"}),
                 ConfigError);
    EXPECT_THROW(consumeFlags(cli, {"--fail-link", "nope"}),
                 ConfigError);
}

} // namespace
} // namespace lapses
