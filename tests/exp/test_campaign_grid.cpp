/**
 * @file
 * Unit tests for campaign-grid expansion: cross-product sizes, axis
 * ordering, seed derivation, multi-grid numbering, axis validation,
 * and the --grid spec parser.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "exp/campaign.hpp"
#include "exp/grid_spec.hpp"

namespace lapses
{
namespace
{

TEST(CampaignGrid, EmptyAxesExpandToOneBaseRun)
{
    CampaignGrid grid;
    const auto runs = grid.expand();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].index, 0u);
    EXPECT_EQ(runs[0].series, 0u);
    EXPECT_EQ(runs[0].config.normalizedLoad,
              grid.base.normalizedLoad);
}

TEST(CampaignGrid, CrossProductCountsMultiply)
{
    CampaignGrid grid;
    grid.axes.models = {RouterModel::Proud, RouterModel::LaProud};
    grid.axes.selectors = {SelectorKind::StaticXY, SelectorKind::Lru,
                           SelectorKind::MaxCredit};
    grid.axes.loads = {0.1, 0.2, 0.3, 0.4};
    EXPECT_EQ(grid.axes.runCount(), 2u * 3u * 4u);
    const auto runs = grid.expand();
    ASSERT_EQ(runs.size(), 24u);
    // Load varies fastest: one series per (model, selector) pair.
    EXPECT_EQ(runs.back().series, 5u);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].index, i);
        EXPECT_EQ(runs[i].series, i / 4);
        EXPECT_DOUBLE_EQ(runs[i].config.normalizedLoad,
                         grid.axes.loads[i % 4]);
    }
}

TEST(CampaignGrid, SeedsDeriveFromCampaignSeedAndIndex)
{
    CampaignGrid grid;
    grid.campaignSeed = 42;
    grid.axes.loads = {0.1, 0.2, 0.3};
    const auto runs = grid.expand();
    for (const CampaignRun& run : runs) {
        EXPECT_EQ(run.config.seed, deriveSeed(42, run.index));
    }
    EXPECT_NE(runs[0].config.seed, runs[1].config.seed);
}

TEST(CampaignGrid, DeriveSeedsOffKeepsBaseSeed)
{
    CampaignGrid grid;
    grid.base.seed = 7;
    grid.deriveSeeds = false;
    grid.axes.loads = {0.1, 0.2};
    for (const CampaignRun& run : grid.expand())
        EXPECT_EQ(run.config.seed, 7u);
}

TEST(CampaignGrid, OffsetsShiftGlobalNumbering)
{
    CampaignGrid grid;
    grid.axes.loads = {0.1, 0.2};
    const auto runs = grid.expand(10, 3);
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].index, 10u);
    EXPECT_EQ(runs[1].index, 11u);
    EXPECT_EQ(runs[0].series, 3u);
    // The seed stream follows the global index.
    EXPECT_EQ(runs[0].config.seed,
              deriveSeed(grid.campaignSeed, 10));
}

TEST(CampaignGrid, ExpandGridsNumbersAcrossGrids)
{
    CampaignGrid a;
    a.axes.loads = {0.1, 0.2};
    CampaignGrid b;
    b.axes.selectors = {SelectorKind::StaticXY, SelectorKind::Lru};
    b.axes.loads = {0.3};
    const auto runs = expandGrids({a, b});
    ASSERT_EQ(runs.size(), 4u);
    EXPECT_EQ(runs[2].index, 2u);
    EXPECT_EQ(runs[2].series, 1u);
    EXPECT_EQ(runs[3].series, 2u);
}

TEST(CampaignGrid, InvalidCombinationThrowsAtExpansion)
{
    CampaignGrid grid;
    grid.axes.vcCounts = {4};
    grid.axes.escapeVcs = {4}; // escape must be < vcs
    EXPECT_THROW(grid.expand(), ConfigError);
}

TEST(GridSpec, ParsesAxesAndRanges)
{
    CampaignGrid grid;
    applyGridSpec("model=proud,la-proud; routing = duato;"
                  "load=0.1:0.3:0.1,0.5; msglen=4,20",
                  grid);
    EXPECT_EQ(grid.axes.models.size(), 2u);
    ASSERT_EQ(grid.axes.routings.size(), 1u);
    EXPECT_EQ(grid.axes.routings[0], RoutingAlgo::DuatoFullyAdaptive);
    ASSERT_EQ(grid.axes.loads.size(), 4u);
    EXPECT_DOUBLE_EQ(grid.axes.loads[3], 0.5);
    EXPECT_EQ(grid.axes.msgLens, (std::vector<int>{4, 20}));
    EXPECT_EQ(grid.axes.runCount(), 2u * 1u * 4u * 2u);
}

TEST(GridSpec, RejectsUnknownAxisAndBadValues)
{
    CampaignGrid grid;
    EXPECT_THROW(applyGridSpec("warp=9", grid), ConfigError);
    EXPECT_THROW(applyGridSpec("model=warp-proud", grid), ConfigError);
    EXPECT_THROW(applyGridSpec("load=0.5:0.1:0.1", grid), ConfigError);
    EXPECT_THROW(applyGridSpec("msglen=", grid), ConfigError);
    EXPECT_THROW(applyGridSpec("msglen", grid), ConfigError);
}

} // namespace
} // namespace lapses
