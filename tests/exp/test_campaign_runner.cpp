/**
 * @file
 * Campaign-runner tests: the determinism guarantee (byte-identical
 * JSON for --jobs 1 vs --jobs 8 over a 100+ run campaign), ordered
 * emission, saturation short-circuiting, resume, and error
 * propagation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exp/campaign.hpp"
#include "exp/result_sink.hpp"

namespace lapses
{
namespace
{

/** A fast 4x4-mesh campaign with 104 runs (8 series x 13 loads). */
std::vector<CampaignRun>
smallCampaign()
{
    CampaignGrid grid;
    grid.base.radices = {4, 4};
    grid.base.msgLen = 4;
    grid.base.warmupMessages = 10;
    grid.base.measureMessages = 60;
    grid.campaignSeed = 99;
    grid.axes.models = {RouterModel::Proud, RouterModel::LaProud};
    grid.axes.selectors = {SelectorKind::StaticXY,
                           SelectorKind::Random};
    grid.axes.traffics = {TrafficKind::Uniform,
                          TrafficKind::Transpose};
    grid.axes.loads = {0.05, 0.08, 0.11, 0.14, 0.17, 0.2, 0.23,
                       0.26, 0.29, 0.32, 0.35, 0.38, 0.41};
    return grid.expand();
}

std::string
runToJsonl(const std::vector<CampaignRun>& runs, unsigned jobs,
           const ResumeState* resume = nullptr)
{
    std::ostringstream os;
    JsonlSink sink(os);
    CampaignOptions opts;
    opts.jobs = jobs;
    if (resume != nullptr)
        opts.resume = *resume;
    runCampaign(runs, opts, {&sink});
    return os.str();
}

TEST(CampaignRunner, JsonByteIdenticalAcrossJobCounts)
{
    const auto runs = smallCampaign();
    ASSERT_GE(runs.size(), 100u);
    const std::string serial = runToJsonl(runs, 1);
    const std::string parallel = runToJsonl(runs, 8);
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(std::count(serial.begin(), serial.end(), '\n'),
              static_cast<long>(runs.size()));
}

TEST(CampaignRunner, ResultsComeBackInRunIndexOrder)
{
    const auto runs = smallCampaign();
    CampaignOptions opts;
    opts.jobs = 8;
    std::vector<std::size_t> seen;
    opts.progress = [&seen](const RunResult& r) {
        seen.push_back(r.run.index);
    };
    const auto results = runCampaign(runs, opts);
    ASSERT_EQ(results.size(), runs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].run.index, i);
        ASSERT_LT(i, seen.size());
        EXPECT_EQ(seen[i], i);
    }
}

TEST(CampaignRunner, SaturatedTailIsInferredNotSimulated)
{
    // Drive a tiny network far past saturation; the heaviest loads
    // must be marked from the lighter ones.
    CampaignGrid grid;
    grid.base.radices = {4, 4};
    grid.base.msgLen = 8;
    grid.base.warmupMessages = 10;
    grid.base.measureMessages = 120;
    grid.base.latencySatCutoff = 200.0;
    grid.axes.loads = {0.3, 2.0, 3.0, 4.0};
    const auto runs = grid.expand();
    const auto results = runCampaign(runs, CampaignOptions{});
    ASSERT_EQ(results.size(), 4u);
    bool any_inferred = false;
    for (const RunResult& r : results) {
        if (r.inferredSaturated) {
            any_inferred = true;
            EXPECT_TRUE(r.stats.saturated);
        }
    }
    EXPECT_TRUE(any_inferred);
    EXPECT_TRUE(results.back().stats.saturated);
}

TEST(CampaignRunner, ResumeSkipsCompletedRunsAndMatchesFullOutput)
{
    const auto runs = smallCampaign();
    const std::string full = runToJsonl(runs, 4);

    // Simulate a kill after the first 40 records.
    std::istringstream full_is(full);
    std::string partial;
    std::string line;
    for (int i = 0; i < 40 && std::getline(full_is, line); ++i)
        partial += line + '\n';

    std::istringstream partial_is(partial);
    const ResumeState resume = scanResumeJsonl(partial_is);
    EXPECT_EQ(resume.completed.size(), 40u);

    const std::string rest = runToJsonl(runs, 4, &resume);
    EXPECT_EQ(partial + rest, full);
}

TEST(CampaignRunner, ResumedRunsAreReturnedUnexecuted)
{
    const auto runs = smallCampaign();
    ResumeState resume;
    resume.completed = {0, 1, 2};
    CampaignOptions opts;
    opts.resume = resume;
    const auto results = runCampaign(runs, opts);
    EXPECT_FALSE(results[0].executed);
    EXPECT_FALSE(results[2].executed);
    EXPECT_TRUE(results[3].executed);
}

TEST(CampaignRunner, RunErrorsPropagateToTheCaller)
{
    // An unreachable hotspot node id makes the pattern throw.
    CampaignGrid grid;
    grid.base.radices = {4, 4};
    grid.base.traffic = TrafficKind::Hotspot;
    grid.base.hotspot.hotspots = {NodeId(10'000)};
    grid.base.warmupMessages = 5;
    grid.base.measureMessages = 20;
    grid.axes.loads = {0.1, 0.2};
    const auto runs = grid.expand();
    EXPECT_THROW(runCampaign(runs, CampaignOptions{}), ConfigError);
}

TEST(CampaignRunner, ResumeRejectsAMismatchedCampaign)
{
    const auto runs = smallCampaign();
    const std::string full = runToJsonl(runs, 1);
    std::istringstream full_is(full);
    const ResumeState resume = scanResumeJsonl(full_is);

    // Same campaign: fine.
    EXPECT_NO_THROW(validateResume(resume, runs, SinkFormat::Jsonl));

    // Changed campaign seed: every record's seed is stale.
    CampaignGrid other;
    other.base.radices = {4, 4};
    other.campaignSeed = 1234;
    other.axes.loads = {0.05, 0.08};
    EXPECT_THROW(
        validateResume(resume, other.expand(), SinkFormat::Jsonl),
        ConfigError);
}

TEST(ResultSinks, CsvAndJsonlShareTheRecordSchema)
{
    CampaignGrid grid;
    grid.base.radices = {4, 4};
    grid.base.warmupMessages = 5;
    grid.base.measureMessages = 30;
    grid.axes.loads = {0.1};
    const auto runs = grid.expand();

    std::ostringstream json_os;
    std::ostringstream csv_os;
    JsonlSink json_sink(json_os);
    CsvSink csv_sink(csv_os);
    runCampaign(runs, CampaignOptions{}, {&json_sink, &csv_sink});

    const std::string json = json_os.str();
    EXPECT_NE(json.find("\"run\":0"), std::string::npos);
    EXPECT_NE(json.find("\"seed\":"), std::string::npos);
    EXPECT_NE(json.find("\"latency_mean\":"), std::string::npos);

    const std::string csv = csv_os.str();
    EXPECT_NE(csv.find("run,series,mesh,topology,model,"),
              std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);

    // Round-trip: the CSV scanner recovers the completed run.
    std::istringstream csv_is(csv);
    const ResumeState state = scanResumeCsv(csv_is);
    EXPECT_EQ(state.completed.size(), 1u);
    EXPECT_TRUE(state.isDone(0));
}

} // namespace
} // namespace lapses
