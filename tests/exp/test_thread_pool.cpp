/**
 * @file
 * Unit tests for the work-stealing thread pool: submit/drain,
 * result and exception propagation, nested submission.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exp/thread_pool.hpp"

namespace lapses
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([&count] { ++count; }));
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ReturnsValuesThroughFutures)
{
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 50; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptionsWithoutKillingWorkers)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    auto good = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(good.get(), 42);
}

TEST(ThreadPool, WaitIdleDrainsAllQueues)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    std::vector<std::future<void>> inner;
    std::mutex inner_mutex;
    auto outer = pool.submit([&] {
        for (int i = 0; i < 10; ++i) {
            std::lock_guard<std::mutex> lk(inner_mutex);
            inner.push_back(pool.submit([&count] { ++count; }));
        }
    });
    outer.get();
    for (auto& f : inner)
        f.get();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, DestructorDrainsPendingWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
        // No explicit drain: ~ThreadPool must finish everything.
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1u);
}

} // namespace
} // namespace lapses
