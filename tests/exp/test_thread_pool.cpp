/**
 * @file
 * Unit tests for the work-stealing thread pool: submit/drain,
 * result and exception propagation, nested submission.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/thread_pool.hpp"

namespace lapses
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 200; ++i)
        futures.push_back(pool.submit([&count] { ++count; }));
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ReturnsValuesThroughFutures)
{
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 50; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, PropagatesExceptionsWithoutKillingWorkers)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    auto good = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(good.get(), 42);
}

TEST(ThreadPool, PostRunsFireAndForgetTasks)
{
    // post() is the allocation-light path the parallel kernel uses
    // every barrier: no future, caller-owned completion tracking.
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    int pending = 300;
    for (int i = 0; i < 300; ++i) {
        pool.post([&] {
            ++count;
            const std::lock_guard<std::mutex> lock(done_mutex);
            if (--pending == 0)
                done_cv.notify_one();
        });
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return pending == 0; });
    EXPECT_EQ(count.load(), 300);
}

TEST(ThreadPool, WaitIdleDrainsAllQueues)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    std::vector<std::future<void>> inner;
    std::mutex inner_mutex;
    auto outer = pool.submit([&] {
        for (int i = 0; i < 10; ++i) {
            std::lock_guard<std::mutex> lk(inner_mutex);
            inner.push_back(pool.submit([&count] { ++count; }));
        }
    });
    outer.get();
    for (auto& f : inner)
        f.get();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, DestructorDrainsPendingWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
        // No explicit drain: ~ThreadPool must finish everything.
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, ConstructSubmitDestroyStress)
{
    // Lock in the destructor-join order fix: tear pools down while
    // workers are mid-steal, over and over. Destroying Workers one at
    // a time (each ~jthread joining only its own thread) used to free
    // a queue mutex another live worker was about to lock inside
    // trySteal(); under TSAN/ASAN this loop is the regression trap.
    std::atomic<int> count{0};
    for (int round = 0; round < 60; ++round) {
        ThreadPool pool(4);
        // Tiny tasks maximize steal traffic; no drain before the
        // destructor runs, so teardown races the busiest phase.
        for (int i = 0; i < 64; ++i)
            pool.submit([&count] { ++count; });
    }
    // Every task ran despite the immediate teardowns.
    EXPECT_EQ(count.load(), 60 * 64);
}

TEST(ThreadPool, StressNestedPoolsRouteSubmitsCorrectly)
{
    // A worker of an outer pool submitting to an *inner* pool must
    // round-robin into the inner pool's queues, not self-enqueue into
    // a same-index queue of the wrong pool (the campaign-worker /
    // intra-run-pool nesting the parallel kernel creates). The inner
    // submits would deadlock or crash if misrouted; the counts prove
    // they all ran.
    std::atomic<int> ran{0};
    ThreadPool outer(3);
    ThreadPool inner(3);
    std::vector<std::future<void>> outer_futures;
    for (int i = 0; i < 30; ++i) {
        outer_futures.push_back(outer.submit([&] {
            std::vector<std::future<void>> fs;
            for (int j = 0; j < 8; ++j)
                fs.push_back(inner.submit([&ran] { ++ran; }));
            for (auto& f : fs)
                f.get();
        }));
    }
    for (auto& f : outer_futures)
        f.get();
    EXPECT_EQ(ran.load(), 30 * 8);
}

TEST(ThreadPool, ContendedSubmitAndDrainRepeated)
{
    // Many submitters hammering one pool while waitIdle() runs in the
    // middle: exercises the lost-wakeup guard (queued_ under
    // sleep_mutex_) and the idle_cv_ accounting from both sides.
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 20; ++round) {
        std::vector<std::thread> submitters;
        for (int s = 0; s < 4; ++s) {
            submitters.emplace_back([&] {
                for (int i = 0; i < 25; ++i)
                    pool.submit([&count] { ++count; });
            });
        }
        for (auto& t : submitters)
            t.join();
        pool.waitIdle();
        EXPECT_EQ(count.load(), (round + 1) * 100);
    }
}

} // namespace
} // namespace lapses
