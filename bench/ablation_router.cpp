/**
 * @file
 * Ablation bench for the router design choices DESIGN.md calls out:
 * virtual-channel count, buffer depth, and the escape/adaptive VC
 * split under Duato's protocol. Not a paper figure — this quantifies
 * the sensitivity of the reproduction to its microarchitectural knobs.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/simulation.hpp"

using namespace lapses;

namespace
{

SimStats
runPoint(SimConfig cfg)
{
    Simulation sim(cfg);
    return sim.run();
}

SimConfig
base(BenchMode mode)
{
    SimConfig cfg;
    cfg.model = RouterModel::LaProud;
    cfg.routing = RoutingAlgo::DuatoFullyAdaptive;
    cfg.table = TableKind::EconomicalStorage;
    cfg.selector = SelectorKind::StaticXY;
    applyBenchMode(cfg, mode);
    if (mode != BenchMode::Paper) {
        // Ablations need less statistical depth than the figures.
        cfg.measureMessages = std::min<std::uint64_t>(
            cfg.measureMessages, 8000);
    }
    return cfg;
}

} // namespace

int
main()
{
    const BenchMode mode = benchModeFromEnv();
    std::printf("=== Router design ablations (16x16 mesh, mode: %s) "
                "===\n\n",
                benchModeName(mode).c_str());

    // 1. VC count at fixed buffer budget per port (paper assumes 4).
    std::printf("--- VCs per physical channel (uniform 0.5 / "
                "transpose 0.25, 20-flit buffers) ---\n");
    std::printf("%-6s %12s %12s\n", "VCs", "uniform", "transpose");
    for (int vcs : {2, 3, 4, 6, 8}) {
        SimConfig cfg = base(mode);
        cfg.vcsPerPort = vcs;
        cfg.traffic = TrafficKind::Uniform;
        cfg.normalizedLoad = 0.5;
        std::fprintf(stderr, "[ablation] vcs=%d uniform...\n", vcs);
        const SimStats u = runPoint(cfg);
        cfg.traffic = TrafficKind::Transpose;
        cfg.normalizedLoad = 0.25;
        std::fprintf(stderr, "[ablation] vcs=%d transpose...\n", vcs);
        const SimStats t = runPoint(cfg);
        std::printf("%-6d %12s %12s\n", vcs, latencyCell(u).c_str(),
                    latencyCell(t).c_str());
    }

    // 2. Buffer depth (Table 2 uses 20 flits).
    std::printf("\n--- In/out buffer depth in flits (uniform 0.5) "
                "---\n");
    std::printf("%-8s %12s\n", "Depth", "latency");
    for (int depth : {5, 10, 20, 40}) {
        SimConfig cfg = base(mode);
        cfg.bufferDepth = depth;
        cfg.traffic = TrafficKind::Uniform;
        cfg.normalizedLoad = 0.5;
        std::fprintf(stderr, "[ablation] depth=%d...\n", depth);
        std::printf("%-8d %12s\n", depth,
                    latencyCell(runPoint(cfg)).c_str());
    }

    // 3. Escape/adaptive split of the 4 VCs under Duato's protocol.
    std::printf("\n--- Escape VCs out of 4 (transpose 0.3) ---\n");
    std::printf("%-8s %12s\n", "Escape", "latency");
    for (int escape : {1, 2, 3}) {
        SimConfig cfg = base(mode);
        cfg.escapeVcs = escape;
        cfg.traffic = TrafficKind::Transpose;
        cfg.normalizedLoad = 0.3;
        std::fprintf(stderr, "[ablation] escape=%d...\n", escape);
        std::printf("%-8d %12s\n", escape,
                    latencyCell(runPoint(cfg)).c_str());
    }

    // 4. Injection process (the paper's exponential vs Bernoulli).
    std::printf("\n--- Injection process (uniform 0.5) ---\n");
    for (InjectionKind kind :
         {InjectionKind::Exponential, InjectionKind::Bernoulli}) {
        SimConfig cfg = base(mode);
        cfg.injection = kind;
        cfg.traffic = TrafficKind::Uniform;
        cfg.normalizedLoad = 0.5;
        std::fprintf(stderr, "[ablation] injection...\n");
        std::printf("%-12s %12s\n",
                    kind == InjectionKind::Exponential ? "exponential"
                                                       : "bernoulli",
                    latencyCell(runPoint(cfg)).c_str());
    }
    return 0;
}
