/**
 * @file
 * Ablation bench for the router design choices DESIGN.md calls out:
 * virtual-channel count, buffer depth, and the escape/adaptive VC
 * split under Duato's protocol. Not a paper figure — this quantifies
 * the sensitivity of the reproduction to its microarchitectural knobs.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/names.hpp"
#include "core/simulation.hpp"
#include "exp/campaign.hpp"

using namespace lapses;

namespace
{

SimConfig
base(BenchMode mode)
{
    SimConfig cfg;
    cfg.model = RouterModel::LaProud;
    cfg.routing = RoutingAlgo::DuatoFullyAdaptive;
    cfg.table = TableKind::EconomicalStorage;
    cfg.selector = SelectorKind::StaticXY;
    applyBenchMode(cfg, mode);
    if (mode != BenchMode::Paper) {
        // Ablations need less statistical depth than the figures.
        cfg.measureMessages = std::min<std::uint64_t>(
            cfg.measureMessages, 8000);
    }
    return cfg;
}

} // namespace

int
main()
{
    const BenchMode mode = benchModeFromEnv();
    const std::vector<int> vc_counts = {2, 3, 4, 6, 8};
    const std::vector<int> depths = {5, 10, 20, 40};
    const std::vector<int> escapes = {1, 2, 3};
    const std::vector<InjectionKind> injections = {
        InjectionKind::Exponential, InjectionKind::Bernoulli};

    // Every ablation point is an independent single-load series; one
    // campaign of five grids runs them all concurrently.
    std::vector<CampaignGrid> grids;
    {
        CampaignGrid vcs_uniform; // section 1, uniform 0.5 column
        vcs_uniform.base = base(mode);
        vcs_uniform.base.traffic = TrafficKind::Uniform;
        vcs_uniform.base.normalizedLoad = 0.5;
        vcs_uniform.axes.vcCounts = vc_counts;
        grids.push_back(vcs_uniform);

        CampaignGrid vcs_transpose; // section 1, transpose 0.25 column
        vcs_transpose.base = base(mode);
        vcs_transpose.base.traffic = TrafficKind::Transpose;
        vcs_transpose.base.normalizedLoad = 0.25;
        vcs_transpose.axes.vcCounts = vc_counts;
        grids.push_back(vcs_transpose);

        CampaignGrid depth; // section 2
        depth.base = base(mode);
        depth.base.traffic = TrafficKind::Uniform;
        depth.base.normalizedLoad = 0.5;
        depth.axes.bufferDepths = depths;
        grids.push_back(depth);

        CampaignGrid escape; // section 3
        escape.base = base(mode);
        escape.base.traffic = TrafficKind::Transpose;
        escape.base.normalizedLoad = 0.3;
        escape.axes.escapeVcs = escapes;
        grids.push_back(escape);

        CampaignGrid injection; // section 4
        injection.base = base(mode);
        injection.base.traffic = TrafficKind::Uniform;
        injection.base.normalizedLoad = 0.5;
        injection.axes.injections = injections;
        grids.push_back(injection);
    }

    // LAPSES_SHARD=k/M: emit this machine's slice as JSONL instead of
    // the tables (which need every shard's runs) — before anything
    // else touches stdout, which must stay pure records.
    if (runBenchShardFromEnv(grids, "ablation"))
        return 0;

    std::printf("=== Router design ablations (16x16 mesh, mode: %s) "
                "===\n\n",
                benchModeName(mode).c_str());

    CampaignOptions opts;
    opts.jobs = benchJobsFromEnv();
    opts.progress = [](const RunResult& r) {
        std::fprintf(stderr, "[ablation] run %zu: %s\n", r.run.index,
                     r.run.config.describe().c_str());
    };
    const std::vector<RunResult> results =
        runCampaign(expandGrids(grids), opts);

    std::size_t offset = 0;

    // 1. VC count at fixed buffer budget per port (paper assumes 4).
    std::printf("--- VCs per physical channel (uniform 0.5 / "
                "transpose 0.25, 20-flit buffers) ---\n");
    std::printf("%-6s %12s %12s\n", "VCs", "uniform", "transpose");
    for (std::size_t i = 0; i < vc_counts.size(); ++i) {
        const SimStats& u = results[offset + i].stats;
        const SimStats& t = results[offset + vc_counts.size() + i].stats;
        std::printf("%-6d %12s %12s\n", vc_counts[i],
                    latencyCell(u).c_str(), latencyCell(t).c_str());
    }
    offset += 2 * vc_counts.size();

    // 2. Buffer depth (Table 2 uses 20 flits).
    std::printf("\n--- In/out buffer depth in flits (uniform 0.5) "
                "---\n");
    std::printf("%-8s %12s\n", "Depth", "latency");
    for (std::size_t i = 0; i < depths.size(); ++i) {
        std::printf("%-8d %12s\n", depths[i],
                    latencyCell(results[offset + i].stats).c_str());
    }
    offset += depths.size();

    // 3. Escape/adaptive split of the 4 VCs under Duato's protocol.
    std::printf("\n--- Escape VCs out of 4 (transpose 0.3) ---\n");
    std::printf("%-8s %12s\n", "Escape", "latency");
    for (std::size_t i = 0; i < escapes.size(); ++i) {
        std::printf("%-8d %12s\n", escapes[i],
                    latencyCell(results[offset + i].stats).c_str());
    }
    offset += escapes.size();

    // 4. Injection process (the paper's exponential vs Bernoulli).
    std::printf("\n--- Injection process (uniform 0.5) ---\n");
    for (std::size_t i = 0; i < injections.size(); ++i) {
        std::printf("%-12s %12s\n",
                    injectionKindName(injections[i]).c_str(),
                    latencyCell(results[offset + i].stats).c_str());
    }
    return 0;
}
