/**
 * @file
 * Reproduces paper Table 5: routing-table storage cost and router
 * properties across full-table, meta-table, interval and economical
 * storage, with concrete sizes for representative networks (including
 * the T3D example of Section 5.2.1).
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/names.hpp"
#include "exp/campaign.hpp"
#include "routing/algorithm_factory.hpp"
#include "tables/interval_table.hpp"
#include "tables/storage_cost.hpp"

using namespace lapses;

namespace
{

void
printNetworkCosts(const Topology& topo, const char* label,
                  TableFeatures f)
{
    // Two-level meta table with radix(0)-node clusters (one row per
    // cluster on the square meshes).
    const StorageCost costs[] = {
        fullTableCost(topo, f),
        metaTableCost(topo, topo.mesh()->radix(0), f),
        intervalCost(topo),
        economicalStorageCost(topo, f),
    };
    std::printf("--- %s (%d nodes, %d-D%s) ---\n", label,
                topo.numNodes(), topo.mesh()->dims(),
                f.lookahead ? ", look-ahead" : "");
    std::printf("%-20s %10s %10s %12s  %s\n", "Scheme", "Entries",
                "Bits/entry", "Bits/router", "Index hardware");
    for (const StorageCost& c : costs) {
        std::printf("%-20s %10zu %10d %12zu  %s\n", c.scheme.c_str(),
                    c.entriesPerRouter, c.bitsPerEntry,
                    c.bitsPerRouter(), c.indexHardware.c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    // Cost vs measured performance: one campaign grid over the
    // adaptive-capable schemes (interval routing is
    // deterministic-only) on the study mesh, uniform load 0.2. The
    // paper's point is the last column: orders of magnitude less
    // storage at equal latency.
    const BenchMode mode = benchModeFromEnv();
    SimConfig base;
    base.model = RouterModel::LaProud;
    base.routing = RoutingAlgo::DuatoFullyAdaptive;
    base.selector = SelectorKind::StaticXY;
    base.traffic = TrafficKind::Uniform;
    base.normalizedLoad = 0.2;
    applyBenchMode(base, mode);

    const std::vector<TableKind> kinds = {
        TableKind::Full, TableKind::MetaBlockMaximal,
        TableKind::MetaRowMinimal, TableKind::EconomicalStorage};

    CampaignGrid grid;
    grid.base = base;
    grid.axes.tables = kinds;
    std::vector<CampaignGrid> grids = {grid};

    // LAPSES_SHARD=k/M: emit this machine's slice as JSONL instead of
    // the tables (which need every shard's runs) — before anything
    // else touches stdout, which must stay pure records.
    if (runBenchShardFromEnv(grids, "table5"))
        return 0;

    std::printf("=== Table 5: table-storage schemes, properties and "
                "sizes ===\n\n");

    // Qualitative summary (the paper's Table 5 rows).
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Property",
                "Full-Table", "2-Lvl Meta", "Interval",
                "Econ. Storage");
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Table Size", "2^N",
                "2*2^(N/2)", "#ports", "9 (2-D) / 27 (3-D)");
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Scalability",
                "Poor", "Better", "Great", "Great");
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Adaptivity", "Yes",
                "Yes (limit.)", "Not-direct", "Yes");
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Topology",
                "Arbitrary", "Fairly Arbit.", "Arbitrary",
                "Meshes/Tori");
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Commercial",
                "T3D,T3E,S3.mp", "SPIDER,SrvNet", "C-104",
                "None (proposed)");
    std::printf("\n");

    // Concrete sizes: the paper's 16x16 study network...
    const Topology mesh16 = makeSquareMesh(16);
    printNetworkCosts(mesh16, "16x16 study mesh", {true, false});
    printNetworkCosts(mesh16, "16x16 study mesh", {true, true});

    // ... and the Cray T3D example: 2048-entry table -> 27 entries.
    const Topology t3d = makeMeshTopology({16, 16, 8}, false);
    printNetworkCosts(t3d, "Cray T3D-scale 3-D mesh", {true, false});

    // Measured interval counts (interval routing stores per-port
    // label ranges; show the real worst case, not just #ports).
    const RoutingAlgorithmPtr yx =
        makeRoutingAlgorithm(RoutingAlgo::DeterministicYX, mesh16);
    const IntervalTable itable(mesh16, *yx);
    std::printf("Measured interval-table worst case on 16x16 with YX "
                "routing: %zu intervals/router\n",
                itable.entriesPerRouter());

    std::printf("\nEconomical storage keeps full adaptive "
                "programmability at 9 entries -- %zux smaller than the "
                "full table on the study mesh.\n",
                fullTableCost(mesh16, {true, false}).entriesPerRouter /
                    economicalStorageCost(mesh16, {true, false})
                        .entriesPerRouter);

    CampaignOptions opts;
    opts.jobs = benchJobsFromEnv();
    opts.progress = [](const RunResult& r) {
        std::fprintf(stderr, "[table5] run %zu: %s\n", r.run.index,
                     r.run.config.describe().c_str());
    };
    const std::vector<RunResult> results =
        runCampaign(expandGrids(grids), opts);

    // Costs for the measured router: adaptive + look-ahead (LA-PROUD).
    const TableFeatures la{true, true};
    const StorageCost kind_costs[] = {
        fullTableCost(mesh16, la),
        metaTableCost(mesh16, mesh16.mesh()->radix(0), la),
        metaTableCost(mesh16, mesh16.mesh()->radix(0), la),
        economicalStorageCost(mesh16, la),
    };
    std::printf("\n--- Storage cost vs measured latency (16x16, "
                "uniform 0.2, mode: %s) ---\n",
                benchModeName(mode).c_str());
    std::printf("%-20s %12s %12s\n", "Scheme", "Bits/router",
                "Latency");
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        std::printf("%-20s %12zu %12s\n",
                    tableKindName(kinds[i]).c_str(),
                    kind_costs[i].bitsPerRouter(),
                    latencyCell(results[i].stats).c_str());
    }
    return 0;
}
