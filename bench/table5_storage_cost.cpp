/**
 * @file
 * Reproduces paper Table 5: routing-table storage cost and router
 * properties across full-table, meta-table, interval and economical
 * storage, with concrete sizes for representative networks (including
 * the T3D example of Section 5.2.1).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "routing/algorithm_factory.hpp"
#include "tables/interval_table.hpp"
#include "tables/storage_cost.hpp"

using namespace lapses;

namespace
{

void
printNetworkCosts(const MeshTopology& topo, const char* label,
                  TableFeatures f)
{
    // Two-level meta table with radix(0)-node clusters (one row per
    // cluster on the square meshes).
    const StorageCost costs[] = {
        fullTableCost(topo, f),
        metaTableCost(topo, topo.radix(0), f),
        intervalCost(topo),
        economicalStorageCost(topo, f),
    };
    std::printf("--- %s (%d nodes, %d-D%s) ---\n", label,
                topo.numNodes(), topo.dims(),
                f.lookahead ? ", look-ahead" : "");
    std::printf("%-20s %10s %10s %12s  %s\n", "Scheme", "Entries",
                "Bits/entry", "Bits/router", "Index hardware");
    for (const StorageCost& c : costs) {
        std::printf("%-20s %10zu %10d %12zu  %s\n", c.scheme.c_str(),
                    c.entriesPerRouter, c.bitsPerEntry,
                    c.bitsPerRouter(), c.indexHardware.c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("=== Table 5: table-storage schemes, properties and "
                "sizes ===\n\n");

    // Qualitative summary (the paper's Table 5 rows).
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Property",
                "Full-Table", "2-Lvl Meta", "Interval",
                "Econ. Storage");
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Table Size", "2^N",
                "2*2^(N/2)", "#ports", "9 (2-D) / 27 (3-D)");
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Scalability",
                "Poor", "Better", "Great", "Great");
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Adaptivity", "Yes",
                "Yes (limit.)", "Not-direct", "Yes");
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Topology",
                "Arbitrary", "Fairly Arbit.", "Arbitrary",
                "Meshes/Tori");
    std::printf("%-14s %-12s %-14s %-12s %-20s\n", "Commercial",
                "T3D,T3E,S3.mp", "SPIDER,SrvNet", "C-104",
                "None (proposed)");
    std::printf("\n");

    // Concrete sizes: the paper's 16x16 study network...
    const MeshTopology mesh16 = MeshTopology::square2d(16);
    printNetworkCosts(mesh16, "16x16 study mesh", {true, false});
    printNetworkCosts(mesh16, "16x16 study mesh", {true, true});

    // ... and the Cray T3D example: 2048-entry table -> 27 entries.
    const MeshTopology t3d({16, 16, 8}, false);
    printNetworkCosts(t3d, "Cray T3D-scale 3-D mesh", {true, false});

    // Measured interval counts (interval routing stores per-port
    // label ranges; show the real worst case, not just #ports).
    const RoutingAlgorithmPtr yx =
        makeRoutingAlgorithm(RoutingAlgo::DeterministicYX, mesh16);
    const IntervalTable itable(mesh16, *yx);
    std::printf("Measured interval-table worst case on 16x16 with YX "
                "routing: %zu intervals/router\n",
                itable.entriesPerRouter());

    std::printf("\nEconomical storage keeps full adaptive "
                "programmability at 9 entries -- %zux smaller than the "
                "full table on the study mesh.\n",
                fullTableCost(mesh16, {true, false}).entriesPerRouter /
                    economicalStorageCost(mesh16, {true, false})
                        .entriesPerRouter);
    return 0;
}
