/**
 * @file
 * Google-benchmark microbenchmarks for the router datapath: arbitration
 * (the other critical stage of Section 2.2), path selection, and
 * whole-network cycle throughput of the simulator.
 */

#include <benchmark/benchmark.h>

#include "core/simulation.hpp"
#include "router/arbiter.hpp"
#include "selection/selector_factory.hpp"

namespace
{

using namespace lapses;

void
BM_ArbiterGrant(benchmark::State& state)
{
    const int requesters = static_cast<int>(state.range(0));
    RoundRobinArbiter arb(requesters);
    for (auto _ : state) {
        for (int i = 0; i < requesters; i += 2)
            arb.request(i);
        benchmark::DoNotOptimize(arb.grant());
    }
}
BENCHMARK(BM_ArbiterGrant)->Arg(4)->Arg(20)->Arg(64);

void
BM_PathSelection(benchmark::State& state)
{
    const SelectorKind kind =
        static_cast<SelectorKind>(state.range(0));
    const PathSelectorPtr sel = makePathSelector(kind, Rng{1});
    PortStatus status[2];
    status[0] = {1, 2, 35, 1, 100, 40};
    status[1] = {3, 1, 62, 3, 80, 55};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sel->select(std::span<const PortStatus>(status, 2)));
        ++status[0].useCount;
        ++status[1].totalCredits;
    }
}
BENCHMARK(BM_PathSelection)
    ->Arg(static_cast<int>(SelectorKind::StaticXY))
    ->Arg(static_cast<int>(SelectorKind::MinMux))
    ->Arg(static_cast<int>(SelectorKind::Lfu))
    ->Arg(static_cast<int>(SelectorKind::Lru))
    ->Arg(static_cast<int>(SelectorKind::MaxCredit));

void
networkCycles(benchmark::State& state, double load)
{
    SimConfig cfg;
    cfg.model = RouterModel::LaProud;
    cfg.routing = RoutingAlgo::DuatoFullyAdaptive;
    cfg.table = TableKind::EconomicalStorage;
    cfg.traffic = TrafficKind::Uniform;
    cfg.normalizedLoad = load;
    Simulation sim(cfg);
    sim.stepCycles(2000); // warm the network up
    for (auto _ : state)
        sim.stepCycles(100);
    // Report simulated router-cycles per wall second.
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 100 * sim.topology().numNodes()));
}

void
BM_NetworkCycleLowLoad(benchmark::State& state)
{
    networkCycles(state, 0.1);
}
BENCHMARK(BM_NetworkCycleLowLoad)->Unit(benchmark::kMicrosecond);

void
BM_NetworkCycleHighLoad(benchmark::State& state)
{
    networkCycles(state, 0.7);
}
BENCHMARK(BM_NetworkCycleHighLoad)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
