/**
 * @file
 * Google-benchmark microbenchmarks for the router datapath: arbitration
 * (the other critical stage of Section 2.2), path selection, and
 * whole-network cycle throughput of the simulator.
 *
 * The BM_Kernel* cases compare the activity-driven kernel against the
 * scan kernel at low / medium / saturated load and on a drain-heavy
 * (mostly idle) network; items/sec is simulated router-cycles per wall
 * second. CI runs them into BENCH_kernel.json:
 *
 *   ./bench/micro_router --benchmark_filter='BM_Kernel' \
 *       --benchmark_out=BENCH_kernel.json --benchmark_out_format=json
 */

#include <benchmark/benchmark.h>

#include "core/simulation.hpp"
#include "router/arbiter.hpp"
#include "selection/selector_factory.hpp"
#include "telemetry/telemetry.hpp"

namespace
{

using namespace lapses;

void
BM_ArbiterGrant(benchmark::State& state)
{
    const int requesters = static_cast<int>(state.range(0));
    RoundRobinArbiter arb(requesters);
    for (auto _ : state) {
        for (int i = 0; i < requesters; i += 2)
            arb.request(i);
        benchmark::DoNotOptimize(arb.grant());
    }
}
BENCHMARK(BM_ArbiterGrant)->Arg(4)->Arg(20)->Arg(64);

void
BM_PathSelection(benchmark::State& state)
{
    const SelectorKind kind =
        static_cast<SelectorKind>(state.range(0));
    const PathSelectorPtr sel = makePathSelector(kind, Rng{1});
    PortStatus status[2];
    status[0] = {1, 2, 35, 1, 100, 40};
    status[1] = {3, 1, 62, 3, 80, 55};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sel->select(std::span<const PortStatus>(status, 2)));
        ++status[0].useCount;
        ++status[1].totalCredits;
    }
}
BENCHMARK(BM_PathSelection)
    ->Arg(static_cast<int>(SelectorKind::StaticXY))
    ->Arg(static_cast<int>(SelectorKind::MinMux))
    ->Arg(static_cast<int>(SelectorKind::Lfu))
    ->Arg(static_cast<int>(SelectorKind::Lru))
    ->Arg(static_cast<int>(SelectorKind::MaxCredit));

void
networkCycles(benchmark::State& state, double load)
{
    SimConfig cfg;
    cfg.model = RouterModel::LaProud;
    cfg.routing = RoutingAlgo::DuatoFullyAdaptive;
    cfg.table = TableKind::EconomicalStorage;
    cfg.traffic = TrafficKind::Uniform;
    cfg.normalizedLoad = load;
    Simulation sim(cfg);
    sim.stepCycles(2000); // warm the network up
    for (auto _ : state)
        sim.stepCycles(100);
    // Report simulated router-cycles per wall second.
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 100 * sim.topology().numNodes()));
}

void
BM_NetworkCycleLowLoad(benchmark::State& state)
{
    networkCycles(state, 0.1);
}
BENCHMARK(BM_NetworkCycleLowLoad)->Unit(benchmark::kMicrosecond);

void
BM_NetworkCycleHighLoad(benchmark::State& state)
{
    networkCycles(state, 0.7);
}
BENCHMARK(BM_NetworkCycleHighLoad)->Unit(benchmark::kMicrosecond);

SimConfig
kernelBenchConfig(double load, KernelKind kernel)
{
    SimConfig cfg;
    cfg.model = RouterModel::LaProud;
    cfg.routing = RoutingAlgo::DuatoFullyAdaptive;
    cfg.table = TableKind::EconomicalStorage;
    cfg.traffic = TrafficKind::Uniform;
    cfg.normalizedLoad = load;
    cfg.kernel = kernel;
    return cfg;
}

/** Steady-state cycle throughput at one load under one kernel. */
void
kernelCycles(benchmark::State& state, double load, KernelKind kernel)
{
    Simulation sim(kernelBenchConfig(load, kernel));
    sim.stepCycles(2000); // warm the network up
    for (auto _ : state)
        sim.stepCycles(200);
    // Report simulated router-cycles per wall second, comparable
    // across kernels (the active kernel simply executes fewer steps
    // for the same simulated cycles).
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 200 * sim.topology().numNodes()));
}

void
BM_KernelLowLoad(benchmark::State& state)
{
    kernelCycles(state, 0.05,
                 static_cast<KernelKind>(state.range(0)));
}
BENCHMARK(BM_KernelLowLoad)
    ->Arg(static_cast<int>(KernelKind::Active))
    ->Arg(static_cast<int>(KernelKind::Scan))
    ->Unit(benchmark::kMicrosecond);

void
BM_KernelMediumLoad(benchmark::State& state)
{
    kernelCycles(state, 0.3, static_cast<KernelKind>(state.range(0)));
}
BENCHMARK(BM_KernelMediumLoad)
    ->Arg(static_cast<int>(KernelKind::Active))
    ->Arg(static_cast<int>(KernelKind::Scan))
    ->Unit(benchmark::kMicrosecond);

void
BM_KernelSaturatedLoad(benchmark::State& state)
{
    kernelCycles(state, 1.2, static_cast<KernelKind>(state.range(0)));
}
BENCHMARK(BM_KernelSaturatedLoad)
    ->Arg(static_cast<int>(KernelKind::Active))
    ->Arg(static_cast<int>(KernelKind::Scan))
    ->Unit(benchmark::kMicrosecond);

/** Drain-heavy case: a warmed network with injection cut — the regime
 *  of drain phases and deadlock watchdog waits, mostly dead cycles. */
void
BM_KernelDrainHeavy(benchmark::State& state)
{
    const auto kernel = static_cast<KernelKind>(state.range(0));
    Simulation sim(kernelBenchConfig(0.3, kernel));
    sim.stepCycles(2000);
    sim.network().setInjectionEnabled(false);
    while (sim.network().totalOccupancy() > 0 ||
           sim.network().totalBacklog() > 0) {
        sim.stepCycles(200);
    }
    for (auto _ : state)
        sim.stepCycles(200);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 200 * sim.topology().numNodes()));
}
BENCHMARK(BM_KernelDrainHeavy)
    ->Arg(static_cast<int>(KernelKind::Active))
    ->Arg(static_cast<int>(KernelKind::Scan))
    ->Unit(benchmark::kMicrosecond);

/** Closed-loop request/reply service on an 8x8 mesh: the NIC-side
 *  client/server engines (timer wheel, seeded backoff, duplicate
 *  bookkeeping) run inside the kernel step, so their cost shows up
 *  here and nowhere else. */
void
BM_ClosedLoopMesh64(benchmark::State& state)
{
    SimConfig cfg;
    cfg.radices = {8, 8};
    cfg.model = RouterModel::LaProud;
    cfg.routing = RoutingAlgo::DuatoFullyAdaptive;
    cfg.table = TableKind::EconomicalStorage;
    cfg.workload = WorkloadKind::RequestReply;
    cfg.kernel = static_cast<KernelKind>(state.range(0));
    Simulation sim(cfg);
    sim.stepCycles(2000); // reach the steady in-flight window
    for (auto _ : state)
        sim.stepCycles(200);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 200 * sim.topology().numNodes()));
}
BENCHMARK(BM_ClosedLoopMesh64)
    ->Arg(static_cast<int>(KernelKind::Active))
    ->Arg(static_cast<int>(KernelKind::Scan))
    ->Unit(benchmark::kMicrosecond);

/** Non-mesh fabrics on the kernel hot path: the graph-generic
 *  topology core (BFS tables, up*-down* routing, endpoint-indexed
 *  injection) must not tax the per-cycle stepping. Gated like the
 *  BM_Kernel* mesh cases on the active/scan ratio. */
void
fabricKernelCycles(benchmark::State& state, const char* topo,
                   double load)
{
    SimConfig cfg = kernelBenchConfig(
        load, static_cast<KernelKind>(state.range(0)));
    cfg.topology = parseTopologySpec("--topology", topo);
    Simulation sim(cfg);
    sim.stepCycles(2000); // warm the network up
    for (auto _ : state)
        sim.stepCycles(200);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 200 * sim.topology().numNodes()));
}

/** 4-ary 3-tree: 64 hosts, 112 nodes. */
void
BM_KernelFatTree64(benchmark::State& state)
{
    fabricKernelCycles(state, "fattree4x3", 0.1);
}
BENCHMARK(BM_KernelFatTree64)
    ->Arg(static_cast<int>(KernelKind::Active))
    ->Arg(static_cast<int>(KernelKind::Scan))
    ->Unit(benchmark::kMicrosecond);

/** dragonfly(6,2,12): 72 routers in 12 groups. Light load — the
 *  up*-down* tree root saturates this fabric early, and the bench
 *  must measure flowing traffic, not a clogged root. */
void
BM_KernelDragonfly72(benchmark::State& state)
{
    fabricKernelCycles(state, "dragonfly6x2x12", 0.02);
}
BENCHMARK(BM_KernelDragonfly72)
    ->Arg(static_cast<int>(KernelKind::Active))
    ->Arg(static_cast<int>(KernelKind::Scan))
    ->Unit(benchmark::kMicrosecond);

/**
 * The BM_KernelParallel* cases measure what the spatially sharded
 * parallel kernel buys over the single-threaded active kernel on
 * meshes big enough for one cycle's component work to amortize the
 * barrier. Arg encoding differs from the BM_Kernel* cases: Arg(0) is
 * the active-kernel reference, Arg(N > 0) the parallel kernel at N
 * intra-jobs. check_perf.py recognizes the /0 reference and gates on
 * the parallel/active ratio per job count — on a multi-core host the
 * 128x128 mesh at 4 jobs clears 2x; single-core runners just pin the
 * (honest, ~1x) sharding overhead so it cannot silently grow.
 */
SimConfig
parallelBenchConfig(int radix, unsigned jobs)
{
    SimConfig cfg;
    cfg.radices = {radix, radix};
    cfg.model = RouterModel::LaProud;
    cfg.routing = RoutingAlgo::DuatoFullyAdaptive;
    cfg.table = TableKind::EconomicalStorage;
    cfg.traffic = TrafficKind::Uniform;
    cfg.normalizedLoad = 0.3;
    cfg.msgLen = 8;
    cfg.seed = 4242;
    cfg.kernel = jobs == 0 ? KernelKind::Active : KernelKind::Parallel;
    cfg.intraJobs = jobs;
    return cfg;
}

void
parallelCycles(benchmark::State& state, int radix)
{
    Simulation sim(parallelBenchConfig(
        radix, static_cast<unsigned>(state.range(0))));
    sim.stepCycles(500); // warm the network up
    for (auto _ : state)
        sim.stepCycles(50);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 50 * sim.topology().numNodes()));
}

void
BM_KernelParallelMesh64(benchmark::State& state)
{
    parallelCycles(state, 64);
}
BENCHMARK(BM_KernelParallelMesh64)
    ->Arg(0) // active-kernel reference
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_KernelParallelMesh128(benchmark::State& state)
{
    parallelCycles(state, 128);
}
BENCHMARK(BM_KernelParallelMesh128)
    ->Arg(0) // active-kernel reference
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * BM_KernelParallelBatch128 isolates what multi-cycle barrier
 * batching buys on deep wires: linkDelay 3 widens the safe lookahead
 * to 4 cycles, and the Args({jobs, batch}) members run the parallel
 * kernel at 4 intra-jobs under batch caps 1 / 2 / 4 against the
 * Args({0, 0}) active-kernel reference on the same physics. Gated by
 * check_perf.py on the parallel/active ratio per member, so the
 * barrier amortization cannot silently erode; batch 1 doubles as the
 * barrier-every-cycle worst case.
 */
void
BM_KernelParallelBatch128(benchmark::State& state)
{
    SimConfig cfg = parallelBenchConfig(
        128, static_cast<unsigned>(state.range(0)));
    cfg.linkDelay = 3;
    cfg.maxBatchCycles = static_cast<Cycle>(state.range(1));
    Simulation sim(cfg);
    sim.stepCycles(500); // warm the network up
    for (auto _ : state)
        sim.stepCycles(48);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 48 * sim.topology().numNodes()));
}
BENCHMARK(BM_KernelParallelBatch128)
    ->Args({0, 0}) // active-kernel reference
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond);

/**
 * The BM_Router* cases isolate the router hot path in the saturated
 * regime — the regime that dominates every load sweep past the knee —
 * on a fully pinned configuration (independent of SimConfig defaults),
 * so the committed BENCH_router.json baseline stays comparable across
 * PRs. CI runs them into BENCH_router.json:
 *
 *   ./bench/micro_router --benchmark_filter='BM_Router' \
 *       --benchmark_out=BENCH_router.json --benchmark_out_format=json
 */
SimConfig
routerBenchConfig(TrafficKind traffic, KernelKind kernel)
{
    SimConfig cfg;
    cfg.radices = {8, 8};
    cfg.model = RouterModel::LaProud;
    cfg.vcsPerPort = 4;
    cfg.bufferDepth = 20;
    cfg.routing = RoutingAlgo::DuatoFullyAdaptive;
    cfg.table = TableKind::EconomicalStorage;
    cfg.selector = SelectorKind::MaxCredit;
    cfg.traffic = traffic;
    cfg.normalizedLoad = 1.2;
    cfg.msgLen = 8;
    cfg.seed = 4242;
    cfg.kernel = kernel;
    return cfg;
}

/** Saturated steady-state cycle throughput on the pinned config. */
void
routerCycles(benchmark::State& state, TrafficKind traffic)
{
    Simulation sim(routerBenchConfig(
        traffic, static_cast<KernelKind>(state.range(0))));
    sim.stepCycles(2000); // fill the network to saturation
    for (auto _ : state)
        sim.stepCycles(200);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 200 * sim.topology().numNodes()));
}

void
BM_RouterSaturatedUniform(benchmark::State& state)
{
    routerCycles(state, TrafficKind::Uniform);
}
BENCHMARK(BM_RouterSaturatedUniform)
    ->Arg(static_cast<int>(KernelKind::Active))
    ->Arg(static_cast<int>(KernelKind::Scan))
    ->Unit(benchmark::kMicrosecond);

void
BM_RouterSaturatedHotspot(benchmark::State& state)
{
    routerCycles(state, TrafficKind::Hotspot);
}
BENCHMARK(BM_RouterSaturatedHotspot)
    ->Arg(static_cast<int>(KernelKind::Active))
    ->Arg(static_cast<int>(KernelKind::Scan))
    ->Unit(benchmark::kMicrosecond);

/**
 * BM_RouterFaulted*: the saturated pinned config again, but running
 * degraded — two links died (and their reconfigurations completed)
 * during warm-up, so the measured steady state exercises the
 * dead-port masks on the router hot path. Gated via check_perf.py
 * like the healthy BM_Router* cases: a regression of the active/scan
 * ratio here means the fault machinery leaked cost into stepping.
 */
void
BM_RouterFaultedUniform(benchmark::State& state)
{
    SimConfig cfg = routerBenchConfig(
        TrafficKind::Uniform, static_cast<KernelKind>(state.range(0)));
    cfg.table = TableKind::Full; // reprogramming path included
    cfg.faultCount = 2;
    cfg.faultStart = 500;
    cfg.faultSpacing = 500;
    cfg.reconfigLatency = 200;
    Simulation sim(cfg);
    sim.stepCycles(2000); // saturate; both faults + reconfigs land
    for (auto _ : state)
        sim.stepCycles(200);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 200 * sim.topology().numNodes()));
}
BENCHMARK(BM_RouterFaultedUniform)
    ->Arg(static_cast<int>(KernelKind::Active))
    ->Arg(static_cast<int>(KernelKind::Scan))
    ->Unit(benchmark::kMicrosecond);

/**
 * BM_RouterTelemetryWindow: the saturated pinned config with the
 * telemetry subsystem fully engaged — a 64-cycle sampling window and
 * an attached buffer, so every boundary snapshots all 64 routers.
 * Two jobs: (1) quantify what observation costs when it is ON, and
 * (2) guard the telemetry-OFF hot path — the plain BM_Router* cases
 * above run the exact same stepping code with the hooks compiled in
 * but disabled, so a drift in *their* ratios against the committed
 * BENCH_router.json baseline means the off path stopped being free.
 */
void
BM_RouterTelemetryWindow(benchmark::State& state)
{
    SimConfig cfg = routerBenchConfig(
        TrafficKind::Uniform, static_cast<KernelKind>(state.range(0)));
    cfg.telemetryWindow = 64;
    Simulation sim(cfg);
    TelemetryBuffer buffer(sim.topology().numNodes(),
                           sim.topology().numPorts());
    sim.network().attachTelemetryBuffer(&buffer);
    sim.stepCycles(2000); // fill the network to saturation
    for (auto _ : state)
        sim.stepCycles(200);
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 200 * sim.topology().numNodes()));
}
BENCHMARK(BM_RouterTelemetryWindow)
    ->Arg(static_cast<int>(KernelKind::Active))
    ->Arg(static_cast<int>(KernelKind::Scan))
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
