/**
 * @file
 * Reproduces paper Figure 6: average latency of the five path-selection
 * heuristics (STATIC-XY, MIN-MUX, LFU, LRU, MAX-CREDIT) versus
 * normalized load for the four traffic patterns.
 */

#include <cstdio>
#include <iterator>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "exp/campaign.hpp"

using namespace lapses;

namespace
{

const SelectorKind kSelectors[] = {
    SelectorKind::StaticXY, SelectorKind::MinMux, SelectorKind::Lfu,
    SelectorKind::Lru, SelectorKind::MaxCredit,
};

struct PatternSpec
{
    TrafficKind traffic;
    std::vector<double> loads;
};

std::vector<PatternSpec>
patterns(BenchMode mode)
{
    std::vector<PatternSpec> specs = {
        {TrafficKind::Uniform,
         {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}},
        {TrafficKind::Transpose,
         {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}},
        {TrafficKind::BitReversal,
         {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}},
        {TrafficKind::PerfectShuffle, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}},
    };
    if (mode == BenchMode::Quick) {
        for (auto& s : specs) {
            std::vector<double> thin;
            for (std::size_t i = 0; i < s.loads.size(); i += 2)
                thin.push_back(s.loads[i]);
            s.loads = thin;
        }
    }
    return specs;
}

} // namespace

int
main()
{
    const BenchMode mode = benchModeFromEnv();
    SimConfig base;
    base.model = RouterModel::LaProud;
    base.routing = RoutingAlgo::DuatoFullyAdaptive;
    base.table = TableKind::Full;
    applyBenchMode(base, mode);

    // One grid per traffic pattern; the selector axis gives one series
    // per heuristic, all sweeping that pattern's load axis in parallel.
    const std::vector<PatternSpec> specs = patterns(mode);
    std::vector<CampaignGrid> grids;
    for (const PatternSpec& spec : specs) {
        CampaignGrid grid;
        grid.base = base;
        grid.base.traffic = spec.traffic;
        grid.axes.selectors.assign(std::begin(kSelectors),
                                   std::end(kSelectors));
        grid.axes.loads = spec.loads;
        grids.push_back(std::move(grid));
    }

    // LAPSES_SHARD=k/M: emit this machine's slice as JSONL instead of
    // the tables (which need every shard's runs) — before anything
    // else touches stdout, which must stay pure records.
    if (runBenchShardFromEnv(grids, "fig6"))
        return 0;

    std::printf("=== Figure 6: path-selection heuristics on a 16x16 "
                "mesh (mode: %s) ===\n",
                benchModeName(mode).c_str());
    std::printf("LA-PROUD, Duato fully adaptive, 20-flit messages\n\n");

    CampaignOptions opts;
    opts.jobs = benchJobsFromEnv();
    opts.progress = [](const RunResult& r) {
        std::fprintf(stderr, "[fig6] run %zu: %s\n", r.run.index,
                     r.run.config.describe().c_str());
    };
    const std::vector<RunResult> results =
        runCampaign(expandGrids(grids), opts);

    std::size_t offset = 0;
    for (const PatternSpec& spec : specs) {
        const std::size_t n_loads = spec.loads.size();
        std::printf("--- %s traffic: average latency ---\n",
                    trafficKindName(spec.traffic).c_str());
        std::printf("%-12s", "Load");
        for (double load : spec.loads)
            std::printf("%9.1f", load);
        std::printf("\n");
        for (std::size_t s = 0; s < std::size(kSelectors); ++s) {
            std::printf("%-12s",
                        selectorKindName(kSelectors[s]).c_str());
            for (std::size_t i = 0; i < n_loads; ++i) {
                const SimStats& st =
                    results[offset + s * n_loads + i].stats;
                std::printf("%9s", latencyCell(st).c_str());
            }
            std::printf("\n");
        }
        std::printf("\n");
        offset += std::size(kSelectors) * n_loads;
    }
    std::printf("Expected shape (paper): STATIC-XY best for uniform; "
                "LRU/LFU/MAX-CREDIT clearly best for the non-uniform "
                "patterns at medium-high load.\n");
    return 0;
}
