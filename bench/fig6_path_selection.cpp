/**
 * @file
 * Reproduces paper Figure 6: average latency of the five path-selection
 * heuristics (STATIC-XY, MIN-MUX, LFU, LRU, MAX-CREDIT) versus
 * normalized load for the four traffic patterns.
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulation.hpp"

using namespace lapses;

namespace
{

const SelectorKind kSelectors[] = {
    SelectorKind::StaticXY, SelectorKind::MinMux, SelectorKind::Lfu,
    SelectorKind::Lru, SelectorKind::MaxCredit,
};

struct PatternSpec
{
    TrafficKind traffic;
    std::vector<double> loads;
};

std::vector<PatternSpec>
patterns(BenchMode mode)
{
    std::vector<PatternSpec> specs = {
        {TrafficKind::Uniform,
         {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}},
        {TrafficKind::Transpose,
         {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}},
        {TrafficKind::BitReversal,
         {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}},
        {TrafficKind::PerfectShuffle, {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}},
    };
    if (mode == BenchMode::Quick) {
        for (auto& s : specs) {
            std::vector<double> thin;
            for (std::size_t i = 0; i < s.loads.size(); i += 2)
                thin.push_back(s.loads[i]);
            s.loads = thin;
        }
    }
    return specs;
}

} // namespace

int
main()
{
    const BenchMode mode = benchModeFromEnv();
    SimConfig base;
    base.model = RouterModel::LaProud;
    base.routing = RoutingAlgo::DuatoFullyAdaptive;
    base.table = TableKind::Full;
    applyBenchMode(base, mode);

    std::printf("=== Figure 6: path-selection heuristics on a 16x16 "
                "mesh (mode: %s) ===\n",
                benchModeName(mode).c_str());
    std::printf("LA-PROUD, Duato fully adaptive, 20-flit messages\n\n");

    for (const PatternSpec& spec : patterns(mode)) {
        base.traffic = spec.traffic;
        std::printf("--- %s traffic: average latency ---\n",
                    trafficKindName(spec.traffic).c_str());
        std::printf("%-12s", "Load");
        for (double load : spec.loads)
            std::printf("%9.1f", load);
        std::printf("\n");
        for (SelectorKind sel : kSelectors) {
            SimConfig cfg = base;
            cfg.selector = sel;
            std::fprintf(stderr, "[fig6] %s / %s ...\n",
                         trafficKindName(spec.traffic).c_str(),
                         selectorKindName(sel).c_str());
            const auto points = runLoadSweep(cfg, spec.loads);
            std::printf("%-12s", selectorKindName(sel).c_str());
            for (const SweepPoint& pt : points)
                std::printf("%9s", latencyCell(pt.stats).c_str());
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("Expected shape (paper): STATIC-XY best for uniform; "
                "LRU/LFU/MAX-CREDIT clearly best for the non-uniform "
                "patterns at medium-high load.\n");
    return 0;
}
