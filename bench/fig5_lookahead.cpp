/**
 * @file
 * Reproduces paper Figure 5: latency of NO-LA-DET, NO-LA-ADAPT and
 * LA-DET relative to LA-ADAPT across normalized load for the four
 * traffic patterns, plus the absolute LA-ADAPT latency table.
 *
 * Scale is controlled by LAPSES_BENCH_MODE=quick|default|paper.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "exp/campaign.hpp"

using namespace lapses;

namespace
{

struct Scheme
{
    const char* label;
    RouterModel model;
    RoutingAlgo routing;
};

// Expansion order of the model x routing axes below: model outer,
// routing inner — the campaign series enumerate exactly this list.
const Scheme kSchemes[] = {
    {"NO LA, DET", RouterModel::Proud, RoutingAlgo::DeterministicXY},
    {"NO LA, ADAPT", RouterModel::Proud,
     RoutingAlgo::DuatoFullyAdaptive},
    {"LA, DET", RouterModel::LaProud, RoutingAlgo::DeterministicXY},
    {"LA, ADAPT", RouterModel::LaProud,
     RoutingAlgo::DuatoFullyAdaptive},
};

struct PatternSpec
{
    TrafficKind traffic;
    std::vector<double> loads; // the paper's x-axis per pattern
};

std::vector<PatternSpec>
patterns(BenchMode mode)
{
    std::vector<PatternSpec> specs = {
        {TrafficKind::Uniform,
         {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}},
        {TrafficKind::Transpose, {0.1, 0.2, 0.3, 0.4}},
        {TrafficKind::BitReversal, {0.1, 0.2, 0.3, 0.4}},
        {TrafficKind::PerfectShuffle, {0.1, 0.2, 0.3, 0.4, 0.5}},
    };
    if (mode == BenchMode::Quick) {
        for (auto& s : specs) {
            std::vector<double> thin;
            for (std::size_t i = 0; i < s.loads.size(); i += 2)
                thin.push_back(s.loads[i]);
            s.loads = thin;
        }
    }
    return specs;
}

} // namespace

int
main()
{
    const BenchMode mode = benchModeFromEnv();
    SimConfig base;
    base.table = TableKind::Full;
    base.selector = SelectorKind::StaticXY; // Fig. 5 uses static PS
    applyBenchMode(base, mode);

    // One grid per traffic pattern (the load axes differ); the four
    // schemes are the model x routing cross-product within each grid.
    const std::vector<PatternSpec> specs = patterns(mode);
    std::vector<CampaignGrid> grids;
    for (const PatternSpec& spec : specs) {
        CampaignGrid grid;
        grid.base = base;
        grid.base.traffic = spec.traffic;
        grid.axes.models = {RouterModel::Proud, RouterModel::LaProud};
        grid.axes.routings = {RoutingAlgo::DeterministicXY,
                              RoutingAlgo::DuatoFullyAdaptive};
        grid.axes.loads = spec.loads;
        grids.push_back(std::move(grid));
    }

    // LAPSES_SHARD=k/M: emit this machine's slice as JSONL instead of
    // the tables (which need every shard's runs) — before anything
    // else touches stdout, which must stay pure records.
    if (runBenchShardFromEnv(grids, "fig5"))
        return 0;

    std::printf("=== Figure 5: look-ahead and adaptivity on a 16x16 "
                "mesh (mode: %s) ===\n",
                benchModeName(mode).c_str());
    std::printf("20-flit messages, 4 VCs/PC, Duato adaptive vs "
                "dimension-order XY, static path selection\n\n");

    CampaignOptions opts;
    opts.jobs = benchJobsFromEnv();
    opts.progress = [](const RunResult& r) {
        std::fprintf(stderr, "[fig5] run %zu: %s\n", r.run.index,
                     r.run.config.describe().c_str());
    };
    const std::vector<RunResult> results =
        runCampaign(expandGrids(grids), opts);

    std::size_t offset = 0;
    const std::size_t n_schemes = std::size(kSchemes);
    for (const PatternSpec& spec : specs) {
        const std::size_t n_loads = spec.loads.size();
        auto at = [&](std::size_t scheme,
                      std::size_t load) -> const SimStats& {
            return results[offset + scheme * n_loads + load].stats;
        };

        std::printf("--- %s traffic: %% latency increase over "
                    "LA,ADAPT ---\n",
                    trafficKindName(spec.traffic).c_str());
        std::printf("%-14s", "Load");
        for (double load : spec.loads)
            std::printf("%9.1f", load);
        std::printf("\n");
        for (std::size_t s = 0; s + 1 < n_schemes; ++s) {
            std::printf("%-14s", kSchemes[s].label);
            for (std::size_t i = 0; i < n_loads; ++i) {
                const SimStats& ref = at(3, i);
                const SimStats& cur = at(s, i);
                if (ref.saturated || cur.saturated) {
                    std::printf("%9s", cur.saturated ? "Sat." : "-");
                } else {
                    const double pct = 100.0 *
                        (cur.meanLatency() - ref.meanLatency()) /
                        ref.meanLatency();
                    std::printf("%8.1f%%", pct);
                }
            }
            std::printf("\n");
        }
        std::printf("%-14s", "LA,ADAPT abs");
        for (std::size_t i = 0; i < n_loads; ++i)
            std::printf("%9s", latencyCell(at(3, i)).c_str());
        std::printf("\n\n");
        offset += n_schemes * n_loads;
    }
    return 0;
}
