/**
 * @file
 * Reproduces paper Figure 5: latency of NO-LA-DET, NO-LA-ADAPT and
 * LA-DET relative to LA-ADAPT across normalized load for the four
 * traffic patterns, plus the absolute LA-ADAPT latency table.
 *
 * Scale is controlled by LAPSES_BENCH_MODE=quick|default|paper.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulation.hpp"

using namespace lapses;

namespace
{

struct Scheme
{
    const char* label;
    RouterModel model;
    RoutingAlgo routing;
};

const Scheme kSchemes[] = {
    {"NO LA, DET", RouterModel::Proud, RoutingAlgo::DeterministicXY},
    {"NO LA, ADAPT", RouterModel::Proud,
     RoutingAlgo::DuatoFullyAdaptive},
    {"LA, DET", RouterModel::LaProud, RoutingAlgo::DeterministicXY},
    {"LA, ADAPT", RouterModel::LaProud,
     RoutingAlgo::DuatoFullyAdaptive},
};

struct PatternSpec
{
    TrafficKind traffic;
    std::vector<double> loads; // the paper's x-axis per pattern
};

std::vector<PatternSpec>
patterns(BenchMode mode)
{
    std::vector<PatternSpec> specs = {
        {TrafficKind::Uniform,
         {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}},
        {TrafficKind::Transpose, {0.1, 0.2, 0.3, 0.4}},
        {TrafficKind::BitReversal, {0.1, 0.2, 0.3, 0.4}},
        {TrafficKind::PerfectShuffle, {0.1, 0.2, 0.3, 0.4, 0.5}},
    };
    if (mode == BenchMode::Quick) {
        for (auto& s : specs) {
            std::vector<double> thin;
            for (std::size_t i = 0; i < s.loads.size(); i += 2)
                thin.push_back(s.loads[i]);
            s.loads = thin;
        }
    }
    return specs;
}

} // namespace

int
main()
{
    const BenchMode mode = benchModeFromEnv();
    SimConfig base;
    base.table = TableKind::Full;
    base.selector = SelectorKind::StaticXY; // Fig. 5 uses static PS
    applyBenchMode(base, mode);

    std::printf("=== Figure 5: look-ahead and adaptivity on a 16x16 "
                "mesh (mode: %s) ===\n",
                benchModeName(mode).c_str());
    std::printf("20-flit messages, 4 VCs/PC, Duato adaptive vs "
                "dimension-order XY, static path selection\n\n");

    for (const PatternSpec& spec : patterns(mode)) {
        base.traffic = spec.traffic;
        // Sweep all four schemes over the pattern's load axis.
        std::vector<std::vector<SweepPoint>> results;
        for (const Scheme& s : kSchemes) {
            SimConfig cfg = base;
            cfg.model = s.model;
            cfg.routing = s.routing;
            std::fprintf(stderr, "[fig5] %s / %s ...\n",
                         trafficKindName(spec.traffic).c_str(),
                         s.label);
            results.push_back(runLoadSweep(cfg, spec.loads));
        }
        const auto& la_adapt = results[3];

        std::printf("--- %s traffic: %% latency increase over "
                    "LA,ADAPT ---\n",
                    trafficKindName(spec.traffic).c_str());
        std::printf("%-14s", "Load");
        for (double load : spec.loads)
            std::printf("%9.1f", load);
        std::printf("\n");
        for (std::size_t s = 0; s < 3; ++s) {
            std::printf("%-14s", kSchemes[s].label);
            for (std::size_t i = 0; i < spec.loads.size(); ++i) {
                const SimStats& ref = la_adapt[i].stats;
                const SimStats& cur = results[s][i].stats;
                if (ref.saturated || cur.saturated) {
                    std::printf("%9s", cur.saturated ? "Sat." : "-");
                } else {
                    const double pct = 100.0 *
                        (cur.meanLatency() - ref.meanLatency()) /
                        ref.meanLatency();
                    std::printf("%8.1f%%", pct);
                }
            }
            std::printf("\n");
        }
        std::printf("%-14s", "LA,ADAPT abs");
        for (const SweepPoint& pt : la_adapt)
            std::printf("%9s", latencyCell(pt.stats).c_str());
        std::printf("\n\n");
    }
    return 0;
}
