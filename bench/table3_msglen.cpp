/**
 * @file
 * Reproduces paper Table 3: impact of message length on the look-ahead
 * benefit (uniform traffic, normalized load 0.2).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/simulation.hpp"

using namespace lapses;

int
main()
{
    const BenchMode mode = benchModeFromEnv();
    SimConfig base;
    base.routing = RoutingAlgo::DuatoFullyAdaptive;
    base.table = TableKind::Full;
    base.selector = SelectorKind::StaticXY;
    base.traffic = TrafficKind::Uniform;
    base.normalizedLoad = 0.2;
    applyBenchMode(base, mode);

    std::printf("=== Table 3: impact of message length (uniform "
                "traffic, load 0.2, mode: %s) ===\n\n",
                benchModeName(mode).c_str());
    std::printf("%-10s %-12s %-14s %-10s\n", "Mesg. Len", "Look Ahead",
                "No Look Ahead", "% Improv.");

    for (int len : {5, 10, 20, 50}) {
        SimConfig cfg = base;
        cfg.msgLen = len;

        cfg.model = RouterModel::LaProud;
        std::fprintf(stderr, "[table3] len %d LA ...\n", len);
        Simulation la(cfg);
        const SimStats st_la = la.run();

        cfg.model = RouterModel::Proud;
        std::fprintf(stderr, "[table3] len %d NO-LA ...\n", len);
        Simulation nola(cfg);
        const SimStats st_nola = nola.run();

        const double improv = 100.0 *
            (st_nola.meanLatency() - st_la.meanLatency()) /
            st_la.meanLatency();
        std::printf("%-10d %-12.1f %-14.1f %-10.1f\n", len,
                    st_la.meanLatency(), st_nola.meanLatency(),
                    improv);
    }
    std::printf("\nPaper reference: 18.0 / 15.4 / 11.5 / 6.5 %% for "
                "lengths 5 / 10 / 20 / 50.\n");
    return 0;
}
