/**
 * @file
 * Reproduces paper Table 3: impact of message length on the look-ahead
 * benefit (uniform traffic, normalized load 0.2).
 *
 * Declared as a campaign grid — model x message length, one
 * independent single-load series per cell — so the eight runs execute
 * across all cores (LAPSES_JOBS) and shard across machines
 * (LAPSES_SHARD=k/M) like the other paper grids.
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "exp/campaign.hpp"

using namespace lapses;

int
main()
{
    const BenchMode mode = benchModeFromEnv();
    SimConfig base;
    base.routing = RoutingAlgo::DuatoFullyAdaptive;
    base.table = TableKind::Full;
    base.selector = SelectorKind::StaticXY;
    base.traffic = TrafficKind::Uniform;
    base.normalizedLoad = 0.2;
    applyBenchMode(base, mode);

    const std::vector<int> lengths = {5, 10, 20, 50};

    // Model outer, message length inner — results[m * lengths + l].
    CampaignGrid grid;
    grid.base = base;
    grid.axes.models = {RouterModel::LaProud, RouterModel::Proud};
    grid.axes.msgLens = lengths;
    std::vector<CampaignGrid> grids = {grid};

    // LAPSES_SHARD=k/M: emit this machine's slice as JSONL instead of
    // the table (which needs every shard's runs).
    if (runBenchShardFromEnv(grids, "table3"))
        return 0;

    CampaignOptions opts;
    opts.jobs = benchJobsFromEnv();
    opts.progress = [](const RunResult& r) {
        std::fprintf(stderr, "[table3] run %zu: %s\n", r.run.index,
                     r.run.config.describe().c_str());
    };
    const std::vector<RunResult> results =
        runCampaign(expandGrids(grids), opts);

    std::printf("=== Table 3: impact of message length (uniform "
                "traffic, load 0.2, mode: %s) ===\n\n",
                benchModeName(mode).c_str());
    std::printf("%-10s %-12s %-14s %-10s\n", "Mesg. Len", "Look Ahead",
                "No Look Ahead", "% Improv.");

    for (std::size_t i = 0; i < lengths.size(); ++i) {
        const SimStats& st_la = results[i].stats;
        const SimStats& st_nola = results[lengths.size() + i].stats;
        const double improv = 100.0 *
            (st_nola.meanLatency() - st_la.meanLatency()) /
            st_la.meanLatency();
        std::printf("%-10d %-12.1f %-14.1f %-10.1f\n", lengths[i],
                    st_la.meanLatency(), st_nola.meanLatency(),
                    improv);
    }
    std::printf("\nPaper reference: 18.0 / 15.4 / 11.5 / 6.5 %% for "
                "lengths 5 / 10 / 20 / 50.\n");
    return 0;
}
