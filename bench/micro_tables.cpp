/**
 * @file
 * Google-benchmark microbenchmarks for the table-lookup stage — one of
 * the two critical stages the paper's router cycle time depends on
 * (Section 2.2). Compares lookup cost across storage schemes and the
 * sign-computation hardware of economical storage.
 */

#include <benchmark/benchmark.h>

#include "routing/algorithm_factory.hpp"
#include "tables/economical_storage.hpp"
#include "tables/full_table.hpp"
#include "tables/interval_table.hpp"
#include "tables/meta_table.hpp"
#include "tables/table_factory.hpp"

namespace
{

using namespace lapses;

const Topology&
mesh16()
{
    static const Topology topo = makeSquareMesh(16);
    return topo;
}

const RoutingAlgorithm&
duato()
{
    static const RoutingAlgorithmPtr algo =
        makeRoutingAlgorithm(RoutingAlgo::DuatoFullyAdaptive, mesh16());
    return *algo;
}

void
lookupSweep(benchmark::State& state, const RoutingTable& table)
{
    NodeId r = 0;
    NodeId d = 0;
    const NodeId n = table.topology().numNodes();
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(r, d));
        d += 37;
        if (d >= n) {
            d -= n;
            r = (r + 11) % n;
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}

void
BM_FullTableLookup(benchmark::State& state)
{
    static const FullTable table(mesh16(), duato());
    lookupSweep(state, table);
}
BENCHMARK(BM_FullTableLookup);

void
BM_EconomicalStorageLookup(benchmark::State& state)
{
    static const EconomicalStorageTable table(mesh16(), duato());
    lookupSweep(state, table);
}
BENCHMARK(BM_EconomicalStorageLookup);

void
BM_MetaTableLookup(benchmark::State& state)
{
    static const MetaTable table(mesh16(), duato(),
                                 ClusterMap::blockMap(mesh16(), 4));
    lookupSweep(state, table);
}
BENCHMARK(BM_MetaTableLookup);

void
BM_IntervalTableLookup(benchmark::State& state)
{
    static const RoutingAlgorithmPtr xy =
        makeRoutingAlgorithm(RoutingAlgo::DeterministicXY, mesh16());
    static const IntervalTable table(mesh16(), *xy);
    lookupSweep(state, table);
}
BENCHMARK(BM_IntervalTableLookup);

void
BM_SignVectorComputation(benchmark::State& state)
{
    // The ES index hardware: two subtractions + sign encode.
    const Topology& m = mesh16();
    NodeId r = 3;
    NodeId d = 250;
    for (auto _ : state) {
        const SignVector sv(m.mesh()->nodeToCoords(r),
                            m.mesh()->nodeToCoords(d));
        benchmark::DoNotOptimize(sv.tableIndex());
        d = (d + 41) % m.numNodes();
    }
}
BENCHMARK(BM_SignVectorComputation);

void
BM_TableProgrammingFull(benchmark::State& state)
{
    // Reprogramming cost (router bring-up / reconfiguration path).
    for (auto _ : state) {
        const FullTable table(mesh16(), duato());
        benchmark::DoNotOptimize(&table);
    }
}
BENCHMARK(BM_TableProgrammingFull)->Unit(benchmark::kMillisecond);

void
BM_TableProgrammingEconomical(benchmark::State& state)
{
    for (auto _ : state) {
        const EconomicalStorageTable table(mesh16(), duato());
        benchmark::DoNotOptimize(&table);
    }
}
BENCHMARK(BM_TableProgrammingEconomical)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
