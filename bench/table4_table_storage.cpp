/**
 * @file
 * Reproduces paper Table 4: adaptive routing latency under meta-table
 * (maximal and minimal flexibility maps), full-table and economical
 * storage, for uniform / transpose / bit-reversal traffic.
 */

#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulation.hpp"
#include "exp/campaign.hpp"

using namespace lapses;

namespace
{

struct Column
{
    const char* label;
    TableKind table;
};

const Column kColumns[] = {
    {"Meta-Tbl Adp.", TableKind::MetaBlockMaximal},
    {"Meta-Tbl Det.", TableKind::MetaRowMinimal},
    {"Full-Tbl", TableKind::Full},
    {"Econ. Storage", TableKind::EconomicalStorage},
};

struct PatternSpec
{
    TrafficKind traffic;
    std::vector<double> loads;
};

} // namespace

int
main()
{
    const BenchMode mode = benchModeFromEnv();
    SimConfig base;
    base.model = RouterModel::LaProud;
    base.routing = RoutingAlgo::DuatoFullyAdaptive;
    base.selector = SelectorKind::StaticXY;
    applyBenchMode(base, mode);

    std::vector<PatternSpec> specs = {
        {TrafficKind::Uniform,
         {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}},
        {TrafficKind::Transpose, {0.1, 0.2, 0.3, 0.4, 0.5}},
        {TrafficKind::BitReversal, {0.1, 0.2, 0.3, 0.4}},
    };
    if (mode == BenchMode::Quick) {
        for (auto& s : specs) {
            std::vector<double> thin;
            for (std::size_t i = 0; i < s.loads.size(); i += 2)
                thin.push_back(s.loads[i]);
            s.loads = thin;
        }
    }

    // One grid per traffic pattern; the table axis yields one series
    // per storage scheme, in kColumns order.
    std::vector<CampaignGrid> grids;
    for (const PatternSpec& spec : specs) {
        CampaignGrid grid;
        grid.base = base;
        grid.base.traffic = spec.traffic;
        for (const Column& col : kColumns)
            grid.axes.tables.push_back(col.table);
        grid.axes.loads = spec.loads;
        grids.push_back(std::move(grid));
    }

    // LAPSES_SHARD=k/M: emit this machine's slice as JSONL instead of
    // the tables (which need every shard's runs) — before anything
    // else touches stdout, which must stay pure records.
    if (runBenchShardFromEnv(grids, "table4"))
        return 0;

    std::printf("=== Table 4: table-storage schemes on a 16x16 mesh "
                "(mode: %s) ===\n",
                benchModeName(mode).c_str());
    std::printf("LA-PROUD, Duato fully adaptive, static path "
                "selection. \"Sat.\" = network saturated.\n");
    std::printf("The paper folds Full-Tbl and Econ. Storage into one "
                "column because they are identical; both are run here "
                "to demonstrate it.\n\n");

    std::printf("%-10s %-6s", "Traffic", "Load");
    for (const Column& col : kColumns)
        std::printf(" %14s", col.label);
    std::printf("\n");

    CampaignOptions opts;
    opts.jobs = benchJobsFromEnv();
    opts.progress = [](const RunResult& r) {
        std::fprintf(stderr, "[table4] run %zu: %s\n", r.run.index,
                     r.run.config.describe().c_str());
    };
    const std::vector<RunResult> results =
        runCampaign(expandGrids(grids), opts);

    const std::size_t n_cols = std::size(kColumns);
    std::size_t offset = 0;
    for (const PatternSpec& spec : specs) {
        const std::size_t n_loads = spec.loads.size();
        for (std::size_t i = 0; i < n_loads; ++i) {
            std::printf("%-10s %-6.1f",
                        i == 0 ? trafficKindName(spec.traffic).c_str()
                               : "",
                        spec.loads[i]);
            for (std::size_t c = 0; c < n_cols; ++c) {
                const SimStats& st =
                    results[offset + c * n_loads + i].stats;
                std::printf(" %14s", latencyCell(st).c_str());
            }
            std::printf("\n");
        }
        offset += n_cols * n_loads;
    }
    return 0;
}
