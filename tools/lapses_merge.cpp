/**
 * @file
 * lapses-merge: validate, merge and aggregate sharded campaign output.
 *
 * M machines each run one shard of a campaign:
 *
 *   lapses-campaign --grid "..." --seed 7 --shard k/M --json shard-k.jsonl
 *
 * and this tool reassembles the canonical single-host file (plus
 * figure-ready aggregates) from the shard files:
 *
 *   lapses-merge --grid "..." --seed 7 --format jsonl \
 *       --out merged.jsonl shard-*.jsonl
 *
 * The campaign definition (--grid / --seed / base-config flags) must
 * repeat the one the shards ran: it is expanded to the same globally
 * numbered run list, and every shard record is checked against it.
 * Overlapping shards, records from a foreign grid, mis-seeded shards
 * and truncated trailing records are rejected with the offending
 * file and run named. Missing runs (a shard that crashed or was never
 * run) are listed for `lapses-campaign --shard k/M --resume`-style
 * refill, and abort the merge unless --allow-gaps is given.
 *
 * With every shard present, the merged file is byte-identical to the
 * file the unsharded campaign would have written.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/lapses.hpp"
#include "exp/campaign_cli.hpp"
#include "exp/merge.hpp"

namespace
{

using namespace lapses;

void
printHelp()
{
    std::printf(
        "lapses-merge -- merge sharded lapses-campaign output\n"
        "\n"
        "usage: lapses-merge [campaign flags] [merge flags] "
        "SHARD_FILE...\n"
        "\n"
        "%s"
        "\n"
        "Merge:\n"
        "  --format jsonl|csv   record format of the shard files "
        "[jsonl]\n"
        "  --out FILE           write the merged, run-index-ordered\n"
        "                       records here ('-' = stdout)\n"
        "  --allow-gaps         merge even when runs are missing\n"
        "                       (gaps are listed for --resume refill)\n"
        "  --check              validate the shards and report\n"
        "                       coverage without writing anything\n"
        "  --group-by AXES      aggregate over comma-separated grid\n"
        "                       axes (model|routing|table|selector|\n"
        "                       traffic|injection|msglen|vcs|buffers|\n"
        "                       escape|faults|fault-seed|\n"
        "                       telemetry-window|load|mesh|topology|\n"
        "                       series):\n"
        "                       mean/p50/p99 of latency and accepted\n"
        "                       throughput\n"
        "  --agg-out FILE       write the aggregate CSV here [stdout]\n"
        "  --help               this text\n",
        campaignCliHelp());
}

std::vector<std::string>
splitList(const std::string& list)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t next = list.find(',', pos);
        if (next == std::string::npos)
            next = list.size();
        std::string item = list.substr(pos, next - pos);
        // Trim surrounding whitespace.
        const std::size_t a = item.find_first_not_of(" \t");
        const std::size_t b = item.find_last_not_of(" \t");
        if (a != std::string::npos)
            out.push_back(item.substr(a, b - a + 1));
        pos = next + 1;
    }
    return out;
}

/** "5 runs: 3, 7, 11, ... (and 2 more)" for the gap report. */
std::string
describeGaps(const std::vector<std::size_t>& missing)
{
    std::ostringstream os;
    os << missing.size() << " missing run"
       << (missing.size() == 1 ? "" : "s") << ':';
    const std::size_t shown = std::min<std::size_t>(missing.size(), 16);
    for (std::size_t i = 0; i < shown; ++i)
        os << ' ' << missing[i];
    if (shown < missing.size())
        os << " ... (and " << missing.size() - shown << " more)";
    return os.str();
}

} // namespace

int
main(int argc, char** argv)
{
    CampaignCli cli;
    SinkFormat format = SinkFormat::Jsonl;
    std::string out_path;
    std::string agg_out_path;
    std::vector<std::string> group_by;
    std::vector<std::string> shard_paths;
    bool allow_gaps = false;
    bool check_only = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw ConfigError("missing value for " + arg);
                return argv[++i];
            };
            if (cli.consume(argc, argv, i)) {
                continue;
            } else if (arg == "--help" || arg == "-h") {
                printHelp();
                return 0;
            } else if (arg == "--format") {
                const std::string fmt = value();
                if (fmt == "jsonl")
                    format = SinkFormat::Jsonl;
                else if (fmt == "csv")
                    format = SinkFormat::Csv;
                else
                    throw ConfigError("bad format '" + fmt +
                                      "' (want jsonl|csv)");
            } else if (arg == "--out") {
                out_path = value();
            } else if (arg == "--allow-gaps") {
                allow_gaps = true;
            } else if (arg == "--check") {
                check_only = true;
            } else if (arg == "--group-by") {
                group_by = splitList(value());
            } else if (arg == "--agg-out") {
                agg_out_path = value();
            } else if (!arg.empty() && arg.front() == '-' &&
                       arg != "-") {
                throw ConfigError("unknown option '" + arg +
                                  "' (see --help)");
            } else {
                shard_paths.push_back(arg);
            }
        }

        if (shard_paths.empty())
            throw ConfigError("no shard files given (see --help)");
        if (out_path.empty() && !check_only && group_by.empty()) {
            throw ConfigError(
                "nothing to do: give --out, --check or --group-by");
        }

        const std::vector<CampaignRun> runs = cli.runs();

        std::vector<ShardFile> shards;
        shards.reserve(shard_paths.size());
        for (const std::string& path : shard_paths)
            shards.push_back(readShardFile(path, format));
        validateShardFiles(shards, runs);

        // Coverage: which of the campaign's runs the shards provide.
        const MergeReport report = shardCoverage(shards, runs);

        std::fprintf(stderr,
                     "%zu shard file%s: %zu of %zu runs covered\n",
                     shards.size(), shards.size() == 1 ? "" : "s",
                     report.merged, report.total);
        if (!report.complete()) {
            std::fprintf(stderr, "%s\n",
                         describeGaps(report.missing).c_str());
            std::fprintf(
                stderr,
                "refill: rerun the missing shards, or resume them "
                "with lapses-campaign --shard k/M --resume\n");
            if (!allow_gaps && !check_only) {
                throw ConfigError(
                    "refusing to merge with gaps (use --allow-gaps "
                    "to merge what is there)");
            }
        }

        if (check_only)
            return report.complete() || allow_gaps ? 0 : 1;

        if (!out_path.empty()) {
            std::ofstream file_os;
            const bool to_stdout = out_path == "-";
            if (!to_stdout) {
                // Write via a temp file + rename so an aborted merge
                // never leaves a half-written canonical file.
                file_os.open(out_path + ".tmp", std::ios::trunc);
                if (!file_os)
                    throw ConfigError("cannot open " + out_path +
                                      ".tmp");
            }
            std::ostream& os = to_stdout ? std::cout : file_os;
            mergeShardFiles(shards, runs, os, format);
            os.flush();
            if (!to_stdout) {
                file_os.close();
                if (std::rename((out_path + ".tmp").c_str(),
                                out_path.c_str()) != 0)
                    throw ConfigError("cannot replace " + out_path);
                std::fprintf(stderr, "merged %zu records into %s\n",
                             report.merged, out_path.c_str());
            }
        }

        if (!group_by.empty()) {
            std::ofstream file_os;
            const bool to_stdout =
                agg_out_path.empty() || agg_out_path == "-";
            if (!to_stdout) {
                file_os.open(agg_out_path, std::ios::trunc);
                if (!file_os)
                    throw ConfigError("cannot open " + agg_out_path);
            }
            std::ostream& os = to_stdout ? std::cout : file_os;
            writeAggregateCsv(shards, runs, group_by, os);
            os.flush();
        }
    } catch (const ConfigError& e) {
        std::fprintf(stderr, "lapses-merge: %s\n", e.what());
        return 1;
    }
    return 0;
}
