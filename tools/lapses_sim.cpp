/**
 * @file
 * lapses-sim: command-line driver for the LAPSES network simulator.
 *
 * Run a single point:
 *   lapses-sim --traffic transpose --load 0.3 --selector max-credit
 *
 * Sweep loads and emit CSV (plot Fig. 5/6-style curves directly):
 *   lapses-sim --traffic bit-reversal --sweep 0.1:0.8:0.1 --csv out.csv
 *
 * Every option has the paper's Table 2 value as its default; run with
 * --help for the full list.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/lapses.hpp"
#include "core/names.hpp"
#include "network/tracer.hpp"
#include "stats/report.hpp"
#include "telemetry/telemetry.hpp"

namespace
{

using namespace lapses;

void
printHelp()
{
    std::printf(
        "lapses-sim -- LAPSES adaptive-router network simulator\n"
        "\n"
        "Topology / router (defaults = paper Table 2):\n"
        "  --topology T         mesh|torus|fattreeKxN|dragonflyAxHxG|\n"
        "                       file:PATH (README \"Topologies\") "
        "[mesh]\n"
        "  --mesh KxK[xK]       mesh radices        [16x16]\n"
        "  --torus              wrap links (use --routing "
        "torus-adaptive)\n"
        "  --model M            proud | la-proud    [la-proud]\n"
        "  --vcs N              VCs per channel     [4]\n"
        "  --buffers N          buffer depth flits  [20]\n"
        "  --escape-vcs N       escape VCs (-1=auto)[-1]\n"
        "\n"
        "Routing:\n"
        "  --routing A          xy|yx|duato|north-last|west-first|\n"
        "                       negative-first      [duato]\n"
        "  --table T            full-table|meta-row|meta-block|\n"
        "                       economical-storage|interval\n"
        "                                           [economical-storage]\n"
        "  --selector S         static-xy|first-free|random|min-mux|\n"
        "                       lfu|lru|max-credit  [static-xy]\n"
        "\n"
        "Workload:\n"
        "  --traffic P          uniform|transpose|bit-reversal|\n"
        "                       perfect-shuffle|bit-complement|\n"
        "                       tornado|neighbor|hotspot [uniform]\n"
        "  --load X             normalized load     [0.1]\n"
        "  --msglen N           flits per message   [20]\n"
        "  --injection I        exponential|bernoulli|bursty\n"
        "  --hotspot-frac X     hotspot fraction    [0.1]\n"
        "\n"
        "Closed-loop service workload (README \"Service "
        "workloads\"):\n"
        "  --workload W         open|request-reply  [open]\n"
        "  --servers N          server nodes (ids 0..N-1)   [8]\n"
        "  --inflight-window N  requests a client keeps in\n"
        "                       flight                      [2]\n"
        "  --request-timeout N  cycles before a timeout     [4000]\n"
        "  --max-retries N      retransmissions before a\n"
        "                       request is counted failed   [3]\n"
        "  --backoff-base N     first backoff delay; doubles\n"
        "                       per retry + seeded jitter   [64]\n"
        "  --service-time N     mean server service delay   [16]\n"
        "\n"
        "Dynamic link faults (README \"Fault injection\"):\n"
        "  --fail-link n:p@c    fail node n's port-p link at cycle c\n"
        "                       (repeatable)\n"
        "  --repair-link n:p@c  bring a failed link back up\n"
        "  --faults N           random mid-run link failures [0]\n"
        "  --fault-seed N       fault-site seed (0 = derive) [0]\n"
        "  --fault-start N      first random fault cycle [2000]\n"
        "  --fault-spacing N    cycles between random faults [2000]\n"
        "  --reconfig-latency N cycles before tables reprogram [200]\n"
        "  --fault-policy P     drop|reinject cut messages [reinject]\n"
        "\n"
        "Measurement:\n"
        "  --mode M             quick|default|paper preset (also\n"
        "                       LAPSES_BENCH_MODE; paper = Section\n"
        "                       2.2's 10k warm-up / 400k measured)\n"
        "  --warmup N           warm-up messages    [1000]\n"
        "  --measure N          measured messages   [10000]\n"
        "  --seed N             RNG seed            [1]\n"
        "  --intra-jobs N       parallel-kernel shard threads (with\n"
        "                       LAPSES_KERNEL=parallel; 0 = auto via\n"
        "                       LAPSES_INTRA_JOBS / hardware). Never\n"
        "                       changes results               [0]\n"
        "  --link-delay N       link traversal cycles; widens the\n"
        "                       parallel kernel's batch lookahead [1]\n"
        "  --max-batch N        parallel-kernel cycles per barrier\n"
        "                       (0 = auto via LAPSES_MAX_BATCH, else\n"
        "                       link-delay + 1). Never changes\n"
        "                       results                       [0]\n"
        "\n"
        "Telemetry / tracing (README \"Telemetry & tracing\"; single\n"
        "point only, not --sweep):\n"
        "  --telemetry-window N cycles per telemetry window (0 = off;\n"
        "                       never changes results)           [0]\n"
        "  --telemetry-out FILE per-window per-node metrics, JSONL\n"
        "                       (CSV when FILE ends in .csv);\n"
        "                       needs --telemetry-window\n"
        "  --trace-out FILE     per-message lifecycle spans, JSONL\n"
        "  --trace-capacity N   tracer event ring size      [65536]\n"
        "  --trace-sample N     export every Nth message id     [1]\n"
        "  --profile            print per-phase kernel wall-clock\n"
        "                       times after the run\n"
        "\n"
        "Output / sweeps:\n"
        "  --sweep LO:HI:STEP   sweep normalized load\n"
        "  --csv FILE           write results as CSV\n"
        "  --json               print the point as JSON\n"
        "  --quiet              suppress the human-readable line\n"
        "  --help               this text\n");
}

/** Parse "16x16" or "4x4x4" into radices. */
std::vector<int>
parseMesh(const std::string& spec)
{
    std::vector<int> radices;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t next = spec.find('x', pos);
        if (next == std::string::npos)
            next = spec.size();
        const std::string part = spec.substr(pos, next - pos);
        const int k = std::atoi(part.c_str());
        if (k < 2)
            throw ConfigError("bad mesh spec '" + spec + "'");
        radices.push_back(k);
        pos = next + 1;
    }
    if (radices.empty())
        throw ConfigError("bad mesh spec '" + spec + "'");
    return radices;
}

/** Parse "0.1:0.9:0.1" into a load list. */
std::vector<double>
parseSweep(const std::string& spec)
{
    double lo = 0.0;
    double hi = 0.0;
    double step = 0.0;
    if (std::sscanf(spec.c_str(), "%lf:%lf:%lf", &lo, &hi, &step) != 3 ||
        step <= 0.0 || lo <= 0.0 || hi < lo) {
        throw ConfigError("bad sweep spec '" + spec +
                          "' (want LO:HI:STEP)");
    }
    std::vector<double> loads;
    for (double x = lo; x <= hi + 1e-9; x += step)
        loads.push_back(x);
    return loads;
}

} // namespace

int
main(int argc, char** argv)
{
    SimConfig cfg;
    cfg.warmupMessages = 1000;
    cfg.measureMessages = 10000;
    std::vector<double> sweep;
    std::string csv_path;
    bool as_json = false;
    bool quiet = false;
    std::string telemetry_out;
    std::string trace_out;
    std::uint64_t trace_capacity = 65536;
    std::uint64_t trace_sample = 1;
    bool profile = false;

    const int int_max = std::numeric_limits<int>::max();
    try {
        // LAPSES_BENCH_MODE selects the measurement scale here
        // exactly like it does for the benches (paper = Section 2.2's
        // 10k/400k); explicit --mode/--warmup/--measure flags
        // override it, typos are rejected.
        if (std::getenv("LAPSES_BENCH_MODE") != nullptr)
            applyBenchMode(cfg, benchModeFromEnv());
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw ConfigError("missing value for " + arg);
                return argv[++i];
            };
            if (arg == "--help" || arg == "-h") {
                printHelp();
                return 0;
            } else if (arg == "--mesh") {
                cfg.radices = parseMesh(value());
            } else if (arg == "--torus") {
                cfg.torus = true;
            } else if (arg == "--topology") {
                cfg.topology = parseTopologySpec(arg, value());
                if (cfg.topology.isMeshKind())
                    cfg.torus =
                        cfg.topology.kind == TopologyKind::Torus;
            } else if (arg == "--model") {
                cfg.model = parseRouterModel(value());
            } else if (arg == "--vcs") {
                cfg.vcsPerPort = parseCheckedInt(arg, value(), 1,
                                                 int_max);
            } else if (arg == "--buffers") {
                cfg.bufferDepth = parseCheckedInt(arg, value(), 1,
                                                  int_max);
            } else if (arg == "--escape-vcs") {
                cfg.escapeVcs = parseCheckedInt(arg, value(), -1,
                                                int_max);
            } else if (arg == "--routing") {
                cfg.routing = parseRoutingAlgo(value());
            } else if (arg == "--table") {
                cfg.table = parseTableKind(value());
            } else if (arg == "--selector") {
                cfg.selector = parseSelectorKind(value());
            } else if (arg == "--traffic") {
                cfg.traffic = parseTrafficKind(value());
            } else if (arg == "--load") {
                cfg.normalizedLoad = parseCheckedDouble(
                    arg, value(), 1e-9,
                    std::numeric_limits<double>::max());
            } else if (arg == "--msglen") {
                cfg.msgLen = parseCheckedInt(arg, value(), 1,
                                             int_max);
            } else if (arg == "--injection") {
                cfg.injection = parseInjectionKind(value());
            } else if (arg == "--hotspot-frac") {
                cfg.hotspot.fraction =
                    parseCheckedDouble(arg, value(), 0.0, 1.0);
            } else if (arg == "--workload") {
                cfg.workload = parseWorkloadKind(value());
            } else if (arg == "--servers") {
                cfg.servers = parseCheckedInt(arg, value(), 1,
                                              int_max);
            } else if (arg == "--inflight-window") {
                cfg.inflightWindow = parseCheckedInt(arg, value(), 1,
                                                     int_max);
            } else if (arg == "--request-timeout") {
                cfg.requestTimeout = parseCheckedU64(arg, value());
            } else if (arg == "--max-retries") {
                cfg.maxRetries = parseCheckedInt(arg, value(), 0,
                                                 int_max);
            } else if (arg == "--backoff-base") {
                cfg.backoffBase = parseCheckedU64(arg, value());
            } else if (arg == "--service-time") {
                cfg.serviceTime = parseCheckedU64(arg, value());
            } else if (arg == "--fail-link") {
                cfg.faultEvents.push_back(
                    parseFaultEvent(value(), true));
            } else if (arg == "--repair-link") {
                cfg.faultEvents.push_back(
                    parseFaultEvent(value(), false));
            } else if (arg == "--faults") {
                cfg.faultCount = parseCheckedInt(
                    arg, value(), 0,
                    std::numeric_limits<int>::max());
            } else if (arg == "--fault-seed") {
                cfg.faultSeed = parseCheckedU64(arg, value());
            } else if (arg == "--fault-start") {
                cfg.faultStart = parseCheckedU64(arg, value());
            } else if (arg == "--fault-spacing") {
                cfg.faultSpacing = parseCheckedU64(arg, value());
            } else if (arg == "--reconfig-latency") {
                cfg.reconfigLatency = parseCheckedU64(arg, value());
            } else if (arg == "--fault-policy") {
                cfg.faultPolicy = parseFaultPolicy(value());
            } else if (arg == "--mode") {
                applyBenchMode(cfg, parseBenchModeName(value()));
            } else if (arg == "--warmup") {
                cfg.warmupMessages = parseCheckedU64(arg, value());
            } else if (arg == "--measure") {
                cfg.measureMessages = parseCheckedU64(arg, value());
            } else if (arg == "--seed") {
                cfg.seed = parseCheckedU64(arg, value());
            } else if (arg == "--intra-jobs") {
                cfg.intraJobs = static_cast<unsigned>(
                    parseCheckedInt(arg, value(), 0, int_max));
            } else if (arg == "--link-delay") {
                cfg.linkDelay = static_cast<Cycle>(
                    parseCheckedInt(arg, value(), 1, 64));
            } else if (arg == "--max-batch") {
                cfg.maxBatchCycles = parseCheckedU64(arg, value());
            } else if (arg == "--telemetry-window") {
                cfg.telemetryWindow = parseCheckedU64(arg, value());
            } else if (arg == "--telemetry-out") {
                telemetry_out = value();
            } else if (arg == "--trace-out") {
                trace_out = value();
            } else if (arg == "--trace-capacity") {
                trace_capacity = parseCheckedU64(arg, value());
                if (trace_capacity == 0)
                    throw ConfigError("--trace-capacity must be >= 1");
            } else if (arg == "--trace-sample") {
                trace_sample = parseCheckedU64(arg, value());
                if (trace_sample == 0)
                    throw ConfigError("--trace-sample must be >= 1");
            } else if (arg == "--profile") {
                profile = true;
            } else if (arg == "--sweep") {
                sweep = parseSweep(value());
            } else if (arg == "--csv") {
                csv_path = value();
            } else if (arg == "--json") {
                as_json = true;
            } else if (arg == "--quiet") {
                quiet = true;
            } else {
                throw ConfigError("unknown option '" + arg +
                                  "' (see --help)");
            }
        }

        if (!telemetry_out.empty() && cfg.telemetryWindow == 0) {
            throw ConfigError(
                "--telemetry-out needs --telemetry-window N (> 0)");
        }
        if (!sweep.empty() &&
            (!telemetry_out.empty() || !trace_out.empty() ||
             profile)) {
            throw ConfigError(
                "--telemetry-out/--trace-out/--profile apply to a "
                "single point, not --sweep");
        }

        std::vector<SweepSeries> series(1);
        series[0].label = cfg.describe();

        if (sweep.empty()) {
            cfg.validate();
            Simulation sim(cfg);

            // Pure observers: none of these change a single statistic
            // (DESIGN.md "Telemetry determinism contract").
            std::unique_ptr<TelemetryBuffer> telem;
            std::ofstream telem_os;
            if (!telemetry_out.empty()) {
                telem_os.open(telemetry_out);
                if (!telem_os)
                    throw ConfigError("cannot open " + telemetry_out);
                telem = std::make_unique<TelemetryBuffer>(
                    sim.topology().numNodes(),
                    sim.topology().numPorts());
                sim.network().attachTelemetryBuffer(telem.get());
            }
            std::unique_ptr<FlitTracer> tracer;
            std::ofstream trace_os;
            if (!trace_out.empty()) {
                trace_os.open(trace_out);
                if (!trace_os)
                    throw ConfigError("cannot open " + trace_out);
                tracer = std::make_unique<FlitTracer>(
                    static_cast<std::size_t>(trace_capacity));
                tracer->enableSpanExport(
                    trace_os, trace_sample,
                    static_cast<Cycle>(
                        contentionFreeHopCycles(cfg.model)));
                sim.network().setTracer(tracer.get());
            }
            if (profile)
                sim.network().setProfiling(true);

            const SimStats stats = sim.run();

            if (telem != nullptr) {
                const bool telem_csv =
                    telemetry_out.size() >= 4 &&
                    telemetry_out.compare(telemetry_out.size() - 4, 4,
                                          ".csv") == 0;
                if (telem_csv)
                    telem->writeCsv(telem_os);
                else
                    telem->writeJsonl(telem_os);
                if (!quiet) {
                    std::printf("wrote %zu telemetry rows (%zu "
                                "windows) to %s\n",
                                telem->rows(), telem->windows(),
                                telemetry_out.c_str());
                }
            }
            if (tracer != nullptr && !quiet) {
                std::printf(
                    "wrote %llu message spans to %s\n",
                    static_cast<unsigned long long>(
                        tracer->spansExported()),
                    trace_out.c_str());
            }
            if (profile) {
                const KernelProfile& prof =
                    sim.network().kernelProfile();
                const Network::KernelCounters& kc =
                    sim.network().kernelCounters();
                std::printf(
                    "kernel profile (%s kernel, wall-clock):\n"
                    "  wire drain    %9.3f ms  (%llu events)\n"
                    "  boundary drain%9.3f ms  (coordinator, serial)\n"
                    "  intra deliver %9.3f ms  (summed over shards)\n"
                    "  NIC stepping  %9.3f ms  (%llu steps)\n"
                    "  router steps  %9.3f ms  (%llu steps)\n"
                    "  barrier wait  %9.3f ms  (coordinator)\n"
                    "  fault events  %9.3f ms\n"
                    "  telemetry     %9.3f ms\n"
                    "  total timed   %9.3f ms  (%llu cycles "
                    "fast-forwarded)\n",
                    kernelKindName(sim.network().kernel()),
                    prof.wireDrainSeconds * 1e3,
                    static_cast<unsigned long long>(
                        kc.wireEventsDelivered),
                    prof.boundaryDrainSeconds * 1e3,
                    prof.intraDeliverySeconds * 1e3,
                    prof.nicStepSeconds * 1e3,
                    static_cast<unsigned long long>(kc.nicSteps),
                    prof.routerStepSeconds * 1e3,
                    static_cast<unsigned long long>(kc.routerSteps),
                    prof.barrierWaitSeconds * 1e3,
                    prof.faultSeconds * 1e3,
                    prof.telemetrySeconds * 1e3,
                    prof.totalSeconds() * 1e3,
                    static_cast<unsigned long long>(
                        kc.fastForwardedCycles));
                // Amdahl view: phases the coordinator runs alone vs
                // the timed total. NIC/router stepping and intra
                // delivery are the parallel portion (their seconds sum
                // worker CPU time across shards).
                const double serial = prof.wireDrainSeconds +
                                      prof.boundaryDrainSeconds +
                                      prof.barrierWaitSeconds +
                                      prof.faultSeconds +
                                      prof.telemetrySeconds;
                const double total = prof.totalSeconds();
                if (total > 0.0) {
                    std::printf(
                        "  serial fraction %.1f%% (boundary drain + "
                        "barrier wait + fault + telemetry)\n",
                        100.0 * serial / total);
                }
                const std::size_t shards =
                    sim.network().shardCount();
                if (shards > 1) {
                    std::uint64_t lo =
                        std::numeric_limits<std::uint64_t>::max();
                    std::uint64_t hi = 0;
                    for (std::size_t s = 0; s < shards; ++s) {
                        const Network::KernelCounters& sc =
                            sim.network().shardCounters(s);
                        const std::uint64_t work =
                            sc.nicSteps + sc.routerSteps;
                        lo = std::min(lo, work);
                        hi = std::max(hi, work);
                        std::printf(
                            "  shard %zu stepped %llu components "
                            "(%llu NIC + %llu router), %llu wire "
                            "events\n",
                            s,
                            static_cast<unsigned long long>(work),
                            static_cast<unsigned long long>(
                                sc.nicSteps),
                            static_cast<unsigned long long>(
                                sc.routerSteps),
                            static_cast<unsigned long long>(
                                sc.wireEventsDelivered));
                    }
                    // Warn (measurement only) when shard work is
                    // lopsided enough to cap the parallel speedup;
                    // the floor skips trivially short runs.
                    if (hi > 2 * lo && hi > 10000) {
                        std::fprintf(
                            stderr,
                            "lapses-sim: warning: shard work "
                            "imbalance %llu..%llu stepped components "
                            "(> 2x); the busiest shard bounds the "
                            "parallel speedup\n",
                            static_cast<unsigned long long>(lo),
                            static_cast<unsigned long long>(hi));
                    }
                }
            }

            if (!quiet) {
                std::printf("%s\n  %s\n", cfg.describe().c_str(),
                            stats.summary().c_str());
                const std::string curve = stats.recoveryCurveSummary();
                if (!curve.empty()) {
                    std::printf("  post-fault latency recovery "
                                "(cycles since last fault):\n%s",
                                curve.c_str());
                }
            }
            if (as_json)
                std::printf("%s\n", statsToJson(stats).c_str());
            series[0].loads.push_back(cfg.normalizedLoad);
            series[0].points.push_back(stats);
        } else {
            const auto points = runLoadSweep(
                cfg, sweep, [&](const SweepPoint& pt) {
                    if (!quiet) {
                        std::printf("load %.3f: %s\n", pt.load,
                                    pt.stats.summary().c_str());
                        std::fflush(stdout);
                    }
                });
            for (const SweepPoint& pt : points) {
                series[0].loads.push_back(pt.load);
                series[0].points.push_back(pt.stats);
            }
        }

        if (!csv_path.empty()) {
            std::ofstream os(csv_path);
            if (!os)
                throw ConfigError("cannot open " + csv_path);
            writeSweepCsv(os, series);
            if (!quiet)
                std::printf("wrote %s\n", csv_path.c_str());
        }
    } catch (const ConfigError& e) {
        std::fprintf(stderr, "lapses-sim: %s\n", e.what());
        return 1;
    } catch (const SimulationError& e) {
        std::fprintf(stderr, "lapses-sim: %s\n", e.what());
        return 2;
    }
    return 0;
}
