/**
 * @file
 * lapses-campaign: parallel experiment-campaign driver.
 *
 * Expand a declarative cross-product of configuration axes into
 * independent simulation runs and execute them across worker threads,
 * streaming one result record per run to JSONL and/or CSV:
 *
 *   lapses-campaign --grid "model=proud,la-proud; routing=xy,duato; \
 *       traffic=uniform,transpose; load=0.1:0.8:0.1" \
 *       --jobs 8 --json fig5.jsonl --csv fig5.csv
 *
 * Output is byte-identical for any --jobs value: run i's seed is
 * derived from (--seed, i) at expansion time and records are emitted
 * in run-index order. A killed campaign resumes with --resume, which
 * re-scans the output file and skips the runs already recorded.
 *
 * Repeat --grid to join several grids (e.g. different load axes per
 * traffic pattern) into one campaign with global run numbering.
 *
 * --shard k/M splits the campaign across machines: shard k executes
 * only the run indices i with i % M == k-1 (k is 1-based), keeping
 * global indices and per-run seeds, so the M shard files are
 * byte-identical slices of the unsharded output and `lapses-merge`
 * reassembles the canonical file. Heterogeneous hosts use weighted
 * shards --shard k/M:w, where M counts weight units and the shard owns
 * units k-1 .. k-2+w — e.g. a host 3x faster than its peer takes
 * --shard 1/4:3 and the peer --shard 4/4:1. Any set of shards whose
 * unit ranges partition [1, M] covers the grid exactly once.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/lapses.hpp"
#include "exp/campaign.hpp"
#include "exp/campaign_cli.hpp"
#include "exp/result_sink.hpp"

namespace
{

using namespace lapses;

void
printHelp()
{
    std::printf(
        "lapses-campaign -- parallel LAPSES experiment campaigns\n"
        "\n"
        "%s"
        "\n"
        "Execution:\n"
        "  --jobs N             worker threads (0 = all cores)  [0]\n"
        "  --shard k/M[:w]      execute only run indices i with\n"
        "                       i %% M in [k-1, k-1+w) (one of M weight\n"
        "                       units; w units for a faster host, 1\n"
        "                       when omitted); merge the shard outputs\n"
        "                       with lapses-merge\n"
        "  --no-skip-saturated  simulate loads past saturation too\n"
        "                       (also makes --shard redundancy-free)\n"
        "  --dry-run            list the expanded runs and exit\n"
        "\n"
        "Output:\n"
        "  --json FILE          stream records as JSON Lines\n"
        "  --csv FILE           stream records as CSV\n"
        "  --resume             skip runs already in the output files\n"
        "                       (scans them, then appends)\n"
        "  --quiet              suppress per-run progress on stderr\n"
        "  --help               this text\n",
        campaignCliHelp());
}

} // namespace

int
main(int argc, char** argv)
{
    CampaignCli cli;
    ShardSpec shard;
    unsigned jobs = 0;
    bool skip_saturated = true;
    bool dry_run = false;
    bool resume = false;
    bool quiet = false;
    std::string json_path;
    std::string csv_path;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw ConfigError("missing value for " + arg);
                return argv[++i];
            };
            if (cli.consume(argc, argv, i)) {
                continue;
            } else if (arg == "--help" || arg == "-h") {
                printHelp();
                return 0;
            } else if (arg == "--jobs") {
                jobs = static_cast<unsigned>(
                    std::strtoul(value().c_str(), nullptr, 10));
            } else if (arg == "--shard") {
                shard = parseShardSpec(value());
            } else if (arg == "--no-skip-saturated") {
                skip_saturated = false;
            } else if (arg == "--dry-run") {
                dry_run = true;
            } else if (arg == "--resume") {
                resume = true;
            } else if (arg == "--json") {
                json_path = value();
            } else if (arg == "--csv") {
                csv_path = value();
            } else if (arg == "--quiet") {
                quiet = true;
            } else {
                throw ConfigError("unknown option '" + arg +
                                  "' (see --help)");
            }
        }

        const std::vector<CampaignRun> runs = cli.runs();
        std::size_t owned_total = 0;
        for (const CampaignRun& run : runs) {
            if (shard.owns(run.index))
                ++owned_total;
        }

        if (dry_run) {
            for (const CampaignRun& run : runs) {
                if (!shard.owns(run.index))
                    continue;
                std::printf("run %zu (series %zu): %s\n", run.index,
                            run.series, run.config.describe().c_str());
            }
            if (shard.isAll()) {
                std::printf("%zu runs, %zu series\n", runs.size(),
                            runs.empty() ? 0
                                         : runs.back().series + 1);
            } else {
                std::printf("%zu of %zu runs in shard %s\n",
                            owned_total, runs.size(),
                            shard.str().c_str());
            }
            return 0;
        }

        CampaignOptions opts;
        opts.jobs = jobs;
        opts.skipSaturatedTail = skip_saturated;
        opts.shard = shard;

        // --resume: recover completed runs from every output file and
        // normalize the files before appending. A run counts as
        // completed only when it is durably recorded in *all* files
        // (a kill can land between the per-sink flushes), and
        // normalization rewrites each file to exactly those records —
        // dropping torn lines and orphans — so the resumed campaign
        // finishes with byte-identical files to an uninterrupted run.
        struct ScannedFile
        {
            std::string path;
            SinkFormat format;
            ResumeState state;
        };
        std::vector<ScannedFile> scanned;
        if (resume) {
            if (json_path.empty() && csv_path.empty())
                throw ConfigError("--resume needs --json or --csv");
            if (!json_path.empty()) {
                ScannedFile f{json_path, SinkFormat::Jsonl, {}};
                std::ifstream is(json_path);
                if (is)
                    f.state = scanResumeJsonl(is);
                validateResume(f.state, runs, f.format, shard);
                scanned.push_back(std::move(f));
            }
            if (!csv_path.empty()) {
                ScannedFile f{csv_path, SinkFormat::Csv, {}};
                std::ifstream is(csv_path);
                if (is)
                    f.state = scanResumeCsv(is);
                validateResume(f.state, runs, f.format, shard);
                scanned.push_back(std::move(f));
            }

            opts.resume = scanned.front().state;
            for (std::size_t i = 1; i < scanned.size(); ++i) {
                const ResumeState& other = scanned[i].state;
                std::erase_if(opts.resume.completed,
                              [&other](std::size_t idx) {
                                  return !other.isDone(idx);
                              });
            }
            std::erase_if(opts.resume.saturated,
                          [&](std::size_t idx) {
                              return !opts.resume.isDone(idx);
                          });

            // A kill between the per-run sink flushes leaves the files
            // differing by at most one record. A bigger gap means the
            // output set changed (e.g. --csv added to a finished
            // --json campaign); refuse rather than silently discard
            // the non-shared records and re-simulate them.
            std::size_t max_completed = 0;
            for (const ScannedFile& f : scanned) {
                max_completed = std::max(max_completed,
                                         f.state.completed.size());
            }
            if (max_completed > opts.resume.completed.size() + 1) {
                throw ConfigError(
                    "--resume: the output files disagree on " +
                    std::to_string(max_completed -
                                   opts.resume.completed.size()) +
                    " completed runs (was a new output format added "
                    "to a finished campaign?); resume with the "
                    "original outputs or start fresh");
            }

            // Rewrite each file to exactly the shared completed
            // records (dropping torn lines and orphans) via temp file
            // + rename, so a kill mid-rewrite cannot lose records.
            for (const ScannedFile& f : scanned) {
                const std::string tmp = f.path + ".tmp";
                {
                    std::ofstream os(tmp, std::ios::trunc);
                    if (!os)
                        throw ConfigError("cannot rewrite " + tmp);
                    if (f.format == SinkFormat::Csv)
                        os << campaignCsvHeader() << '\n';
                    for (const CampaignRun& run : runs) {
                        if (!opts.resume.isDone(run.index))
                            continue;
                        os << f.state.records.at(run.index) << '\n';
                    }
                }
                if (std::rename(tmp.c_str(), f.path.c_str()) != 0)
                    throw ConfigError("cannot replace " + f.path);
            }
        }
        std::size_t resumed = 0;
        for (const CampaignRun& run : runs) {
            if (opts.resume.isDone(run.index))
                ++resumed;
        }

        const auto open_mode = resume ? std::ios::app : std::ios::trunc;
        std::ofstream json_os;
        std::ofstream csv_os;
        std::vector<std::unique_ptr<ResultSink>> sink_storage;
        std::vector<ResultSink*> sinks;
        if (!json_path.empty()) {
            json_os.open(json_path, open_mode);
            if (!json_os)
                throw ConfigError("cannot open " + json_path);
            sink_storage.push_back(
                std::make_unique<JsonlSink>(json_os));
            sinks.push_back(sink_storage.back().get());
        }
        if (!csv_path.empty()) {
            csv_os.open(csv_path, open_mode);
            if (!csv_os)
                throw ConfigError("cannot open " + csv_path);
            // On resume the normalization pass wrote the header.
            sink_storage.push_back(
                std::make_unique<CsvSink>(csv_os, !resume));
            sinks.push_back(sink_storage.back().get());
        }

        std::size_t executed = 0;
        std::size_t saturated = 0;
        opts.progress = [&](const RunResult& r) {
            ++executed;
            if (r.stats.saturated)
                ++saturated;
            if (!quiet) {
                std::fprintf(stderr, "[%zu/%zu] %s%s\n",
                             r.run.index + 1, runs.size(),
                             r.run.config.describe().c_str(),
                             r.stats.saturated ? " [saturated]" : "");
            }
        };

        const auto t0 = std::chrono::steady_clock::now();
        runCampaign(runs, opts, sinks);
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

        // Mirror runCampaign's jobs resolution for the summary line.
        unsigned effective_jobs = jobs;
        if (effective_jobs == 0) {
            effective_jobs = std::thread::hardware_concurrency();
            if (effective_jobs == 0)
                effective_jobs = 1;
        }
        if (shard.isAll()) {
            std::fprintf(stderr,
                         "campaign done: %zu runs (%zu executed, %zu "
                         "resumed, %zu saturated) in %.2fs with %u "
                         "jobs\n",
                         runs.size(), executed, resumed, saturated,
                         secs, effective_jobs);
        } else {
            std::fprintf(stderr,
                         "shard %s done: %zu of %zu runs (%zu "
                         "executed, %zu resumed, %zu saturated) in "
                         "%.2fs with %u jobs; combine the shards with "
                         "lapses-merge\n",
                         shard.str().c_str(), owned_total, runs.size(),
                         executed, resumed, saturated, secs,
                         effective_jobs);
        }
    } catch (const ConfigError& e) {
        std::fprintf(stderr, "lapses-campaign: %s\n", e.what());
        return 1;
    } catch (const SimulationError& e) {
        std::fprintf(stderr, "lapses-campaign: %s\n", e.what());
        return 2;
    }
    return 0;
}
